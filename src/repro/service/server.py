"""The asyncio serving front end: restoration-as-a-service.

:class:`ReproService` listens on TCP, speaks the newline-delimited JSON
protocol of :mod:`repro.service.protocol`, and dispatches compute ops
(``evaluate`` / ``restore`` / ``profile``) onto a worker executor via
``loop.run_in_executor`` — a process pool for ``jobs >= 2`` (each worker
keeps the per-process dataset/CSR/truth caches warm across requests, and
its truth-memo counters are merged back for honest stats), or a
single-thread executor for ``jobs = 1`` (in-process, zero pickling; the
GIL-bound compute still yields the event loop enough to keep progress
frames and new connections flowing).

Request lifecycle
-----------------
1. The frame is decoded and its params normalized; the normalized
   request's content address is the cache **and** coalescing key.
2. Response cache hit → answer immediately (no worker touched).
3. Miss with an identical request already in flight → *coalesce*: await
   the same computation future; every waiter gets the one result.
4. Otherwise start the computation.  While any waiter waits, the server
   emits periodic ``progress`` frames (long rewiring runs are minutes).
5. Per-request timeouts abandon the *wait*, never the computation —
   other coalesced waiters are unaffected and the result still lands in
   the cache; the timed-out client gets a ``service_timeout`` error
   frame.

Shutdown is graceful: :meth:`ReproService.drain` stops accepting,
rejects new compute requests with a ``service`` error frame, waits (up
to ``drain_timeout``) for every in-flight request to finish and flush its
terminal frame, then closes connections and the executor.
"""

from __future__ import annotations

import asyncio
import concurrent.futures as _futures
import signal
import sys
import time

from repro.api.workers import pool_worker_init, publish_datasets
from repro.errors import ReproError, ServiceError, ServiceTimeoutError
from repro.experiments.runner import record_worker_truth_stats, truth_cache_stats
from repro.service.cache import ContentAddressedLRU
from repro.service.handlers import run_op
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_code,
    normalize_request,
    request_key,
)

# Frames are small JSON objects; a 1 MiB line bound is far above any
# legitimate request and keeps a garbage stream from buffering unbounded.
_STREAM_LIMIT = 1 << 20

DEFAULT_PORT = 7331


class ReproService:
    """One serving instance: listener + executor + cache + metrics.

    Parameters
    ----------
    jobs:
        Worker parallelism.  ``>= 2`` runs a process pool (true
        parallelism; each worker process is initialized with an LRU
        bound of ``truth_cache_entries`` on its truth memo); ``1`` runs
        a single worker thread in process.
    cache_entries:
        Response-LRU bound (0 disables response caching).
    truth_cache_entries:
        Per-worker-process truth-memo LRU bound (process-pool mode).
    progress_interval:
        Seconds between ``progress`` frames while a request waits on its
        computation.
    default_timeout:
        Per-request time budget (seconds) when the request frame carries
        no ``timeout`` field; ``None`` waits indefinitely.
    drain_timeout:
        Upper bound on how long :meth:`drain` waits for in-flight
        requests before force-closing.
    shared_datasets:
        ``(dataset, scale)`` pairs to publish into shared memory at
        :meth:`start` (process-pool mode only): each worker attaches the
        frozen CSR snapshot zero-copy instead of rebuilding dataset +
        freeze per process, so pooled requests naming those datasets
        skip the per-worker cold start.  Responses stay byte-identical
        to a direct library call.  Ignored — harmlessly — when shared
        memory is unavailable or ``jobs == 1``.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_entries: int = 128,
        truth_cache_entries: int = 8,
        progress_interval: float = 1.0,
        default_timeout: float | None = None,
        drain_timeout: float = 30.0,
        shared_datasets: tuple = (),
    ) -> None:
        if jobs < 1:
            raise ServiceError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._shared_datasets = tuple(shared_datasets)
        self._publication = None
        self._cache = ContentAddressedLRU(cache_entries)
        self._metrics = ServiceMetrics()
        self._inflight: dict[str, asyncio.Future] = {}
        self._progress_interval = progress_interval
        self._default_timeout = default_timeout
        self._drain_timeout = drain_timeout
        self._truth_cache_entries = truth_cache_entries
        self._executor: _futures.Executor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._active = 0
        self._idle: asyncio.Event | None = None
        self._draining = False
        self.host: str | None = None
        self.port: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting (``port=0`` picks an ephemeral port,
        read back from :attr:`port`)."""
        if self._server is not None:
            raise ServiceError("service already started")
        if self.jobs >= 2:
            descriptors: tuple = ()
            if self._shared_datasets:
                self._publication = publish_datasets(self._shared_datasets)
                if self._publication is not None:
                    descriptors = self._publication.descriptors
            self._executor = _futures.ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=pool_worker_init,
                initargs=(self._truth_cache_entries, descriptors),
            )
            self._executor_kind = "process"
        else:
            self._executor = _futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-service"
            )
            self._executor_kind = "thread"
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_client, host, port, limit=_STREAM_LIMIT
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have been called)."""
        if self._server is None:
            raise ServiceError("service not started")
        await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight requests, then close.

        New connections are refused (listener closed) and new compute
        requests on existing connections get a ``service`` error frame;
        requests already being handled run to completion and deliver
        their terminal frames — bounded by ``drain_timeout``, after
        which remaining connections are force-closed.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = True
        if self._idle is not None and self._active > 0:
            try:
                await asyncio.wait_for(self._idle.wait(), self._drain_timeout)
            except asyncio.TimeoutError:
                drained = False
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            # reap the per-connection tasks (they wake on the closed
            # transports) so none is left pending at loop shutdown
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        if self._executor is not None:
            if drained:
                self._executor.shutdown(wait=True)
            else:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._publication is not None:
            self._publication.close()
            self._publication = None

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``stats`` op's payload: counters, cache, latency, truth."""
        payload = self._metrics.snapshot()
        payload["cache"] = self._cache.stats()
        # merged view: parent-local activity plus worker deltas folded
        # back per completed computation (all-zero-from-workers bug was
        # exactly what the merged view exists to fix)
        payload["truth_cache"] = truth_cache_stats()
        payload["jobs"] = self.jobs
        payload["executor"] = getattr(self, "_executor_kind", None)
        payload["shared_datasets"] = (
            0 if self._publication is None else len(self._publication.descriptors)
        )
        payload["draining"] = self._draining
        payload["protocol_version"] = PROTOCOL_VERSION
        return payload

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # line exceeded the stream limit: not recoverable on
                    # this connection (we lost framing) — report + close
                    self._write_frame(
                        writer,
                        {
                            "id": None,
                            "event": "error",
                            "error_code": "protocol",
                            "message": "frame exceeds the line-length limit",
                        },
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_frame(line, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # swallow instead of re-raising: a cancelled stream-handler
            # task trips asyncio.streams' connection_made callback into
            # logging a spurious "exception never retrieved" traceback
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_frame(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one request frame; always writes exactly one terminal
        frame and never raises (connection errors excepted)."""
        start = time.perf_counter()
        self._active += 1
        self._idle.clear()
        request_id = None
        op = None
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            op = frame.get("op")
            self._metrics.record_request(op if isinstance(op, str) else None)
            params = normalize_request(op, frame.get("params"))
            timeout = self._request_timeout(frame)
            if op == "ping":
                result = {"ok": True, "protocol_version": PROTOCOL_VERSION}
            elif op == "stats":
                result = self.stats()
            else:
                if self._draining:
                    raise ServiceError(
                        "service is draining; compute requests are not accepted"
                    )
                result = await self._serve_compute(
                    writer, request_id, op, params, timeout, start
                )
            self._write_frame(
                writer,
                {"id": request_id, "event": "result", "op": op, "result": result},
            )
        except ReproError as exc:
            self._write_error(writer, request_id, op, error_code(exc), str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # internal fault: still answer the client
            self._write_error(writer, request_id, op, "internal", repr(exc))
        finally:
            self._metrics.record_latency(
                op if isinstance(op, str) else None, time.perf_counter() - start
            )
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _request_timeout(self, frame: dict) -> float | None:
        timeout = frame.get("timeout", self._default_timeout)
        if timeout is None:
            return None
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool):
            from repro.errors import ProtocolError

            raise ProtocolError("timeout must be a number (seconds)")
        return float(timeout)

    # ------------------------------------------------------------------
    # compute path: cache -> coalesce -> executor
    # ------------------------------------------------------------------
    async def _serve_compute(
        self,
        writer: asyncio.StreamWriter,
        request_id,
        op: str,
        params: dict,
        timeout: float | None,
        start: float,
    ) -> dict:
        key = request_key(op, params)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        future = self._inflight.get(key)
        if future is None:
            future = asyncio.ensure_future(self._compute(op, key, params))
            # mark the exception retrieved even if every waiter times out
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            self._inflight[key] = future
        else:
            self._metrics.coalesced += 1
        return await self._await_with_progress(
            writer, request_id, op, future, timeout, start
        )

    async def _compute(self, op: str, key: str, params: dict) -> dict:
        """The single shared computation for one content address."""
        self._metrics.computations += 1
        loop = asyncio.get_running_loop()
        try:
            payload, truth_delta = await loop.run_in_executor(
                self._executor, run_op, op, params
            )
            if self._executor_kind == "process":
                # thread mode already bumped this process's own counters
                record_worker_truth_stats(truth_delta)
            self._cache.put(key, payload)
            return payload
        finally:
            self._inflight.pop(key, None)

    async def _await_with_progress(
        self,
        writer: asyncio.StreamWriter,
        request_id,
        op: str,
        future: asyncio.Future,
        timeout: float | None,
        start: float,
    ) -> dict:
        """Wait for the shared future, emitting periodic progress frames,
        enforcing this waiter's deadline without cancelling the shared
        computation (``asyncio.shield``)."""
        deadline = None if timeout is None else start + timeout
        while True:
            now = time.perf_counter()
            if deadline is not None and now >= deadline:
                self._metrics.timeouts += 1
                raise ServiceTimeoutError(
                    f"request exceeded its {timeout:g}s budget "
                    "(the computation continues for coalesced waiters "
                    "and will populate the cache)"
                )
            interval = self._progress_interval
            if deadline is not None:
                interval = min(interval, deadline - now)
            try:
                return await asyncio.wait_for(
                    asyncio.shield(future), max(interval, 1e-3)
                )
            except asyncio.TimeoutError:
                self._metrics.progress_frames += 1
                self._write_frame(
                    writer,
                    {
                        "id": request_id,
                        "event": "progress",
                        "op": op,
                        "state": "running",
                        "elapsed": round(time.perf_counter() - start, 3),
                    },
                )
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    # client went away: stop waiting on its behalf (the
                    # shared computation itself is untouched)
                    raise ServiceError("client disconnected mid-request") from None

    # ------------------------------------------------------------------
    # frame writing
    # ------------------------------------------------------------------
    @staticmethod
    def _write_frame(writer: asyncio.StreamWriter, frame: dict) -> None:
        if not writer.is_closing():
            writer.write(encode_frame(frame))

    def _write_error(
        self, writer: asyncio.StreamWriter, request_id, op, code: str, message: str
    ) -> None:
        self._metrics.record_error(code)
        self._write_frame(
            writer,
            {
                "id": request_id,
                "event": "error",
                "op": op,
                "error_code": code,
                "message": message,
            },
        )


async def serve(
    service: ReproService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    announce=None,
) -> None:
    """Run ``service`` until SIGTERM/SIGINT, then drain gracefully.

    ``announce`` (a callable taking the ready line) defaults to printing
    on stderr — the CI smoke job and scripts poll for it / ping the port
    to detect readiness.
    """
    await service.start(host, port)
    if announce is None:
        def announce(text: str) -> None:
            print(text, file=sys.stderr, flush=True)
    announce(f"repro service listening on {service.host}:{service.port}")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signame in ("SIGTERM", "SIGINT"):
        try:
            loop.add_signal_handler(getattr(signal, signame), stop.set)
        except (NotImplementedError, OSError):  # non-unix event loops
            pass
    await stop.wait()
    announce("repro service draining")
    await service.drain()
    announce("repro service stopped")
