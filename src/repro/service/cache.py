"""Content-addressed, size-bounded LRU cache for service responses.

The server stores each computed response payload under the content
address of its normalized request (:func:`repro.service.protocol.request_key`),
so a repeat of any request — however its parameters were spelled — is a
cache hit that skips the worker pool entirely.  The bound is an entry
count with least-recently-used eviction; hit/miss/eviction counters feed
the ``stats`` op.

This is the serving-layer tier above the per-worker-process caches (the
dataset registry, the CSR freeze cache, and the LRU-boundable truth
memo of :mod:`repro.experiments.runner`): a response hit here never
reaches a worker, a miss still benefits from the worker-side memos.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ServiceError


class ContentAddressedLRU:
    """Map content addresses to payloads, bounded to ``max_entries``.

    ``max_entries=0`` disables storage entirely (every lookup is a miss)
    — the switch the bench uses to measure uncached latency.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 0:
            raise ServiceError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str):
        """The payload stored under ``key``, or ``None`` (counts the
        lookup as a hit or miss and refreshes recency on hit)."""
        try:
            value = self._entries[key]
        except KeyError:
            self._misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry past the
        bound.  A re-put refreshes recency without eviction."""
        if self.max_entries == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop every entry; counters keep accumulating."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current and maximum size."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "size": len(self._entries),
            "max_entries": self.max_entries,
        }
