"""Wire protocol of the restoration service: newline-delimited JSON.

Every frame is one JSON object on one line.  Clients send request frames::

    {"id": "r1", "op": "evaluate", "params": {"dataset": "anybeat"}, "timeout": 30}

and receive, in order, zero or more progress frames followed by exactly
one terminal frame (``result`` or ``error``)::

    {"id": "r1", "event": "progress", "op": "evaluate", "elapsed": 2.0}
    {"id": "r1", "event": "result",   "op": "evaluate", "result": {...}}
    {"id": "r1", "event": "error",    "op": "evaluate", "error_code": "dataset", "message": "..."}

``id`` is chosen by the client and echoed verbatim (it may be absent).
Frames are serialized canonically (sorted keys, compact separators) so a
byte-level comparison of two responses is meaningful — the CI smoke job
and the service bench rely on that.

Content addressing
------------------
:func:`normalize_request` fills every omitted parameter with its default
and rejects unknown ops/params (:class:`~repro.errors.ProtocolError`), so
two requests that *mean* the same thing normalize to the same object.
:func:`content_address` hashes the canonical JSON of ``(op, params)``;
that address is the key for both the server's response LRU cache and its
request-coalescing table.

Error codes
-----------
:data:`ERROR_CODES` maps every class of the :class:`~repro.errors.ReproError`
hierarchy to a stable machine-readable code carried by error frames;
:func:`error_code` resolves an exception to the code of its most specific
mapped class (anything outside the hierarchy is ``"internal"``).  The
mapping is exhaustive by construction and a test asserts it stays so.
"""

from __future__ import annotations

import hashlib
import json

from repro import errors
from repro.errors import ProtocolError, ReproError
from repro.experiments.runner import MethodAggregate
from repro.metrics.suite import PROPERTY_NAMES

PROTOCOL_VERSION = 1

# Stable wire codes for the full ReproError hierarchy.  Codes are part of
# the protocol contract: never change an existing one, only add new
# entries when the hierarchy grows (tests/test_service.py asserts the
# mapping covers every subclass exactly).
ERROR_CODES: dict[type[ReproError], str] = {
    errors.ReproError: "repro",
    errors.GraphError: "graph",
    errors.SamplingError: "sampling",
    errors.BudgetExhaustedError: "budget_exhausted",
    errors.CrawlFaultError: "crawl_fault",
    errors.NodeChurnedError: "node_churned",
    errors.QueryFailedError: "query_failed",
    errors.EstimationError: "estimation",
    errors.RealizabilityError: "realizability",
    errors.ConstructionError: "construction",
    errors.DatasetError: "dataset",
    errors.ExperimentError: "experiment",
    errors.DistributedError: "distributed",
    errors.WorkerLostError: "worker_lost",
    errors.EngineError: "engine",
    errors.StoreError: "store",
    errors.ServiceError: "service",
    errors.ServiceTimeoutError: "service_timeout",
    errors.ProtocolError: "protocol",
}

INTERNAL_ERROR_CODE = "internal"


def error_code(exc: BaseException) -> str:
    """The stable wire code for ``exc``: its most specific mapped class."""
    for klass in type(exc).__mro__:
        code = ERROR_CODES.get(klass)
        if code is not None:
            return code
    return INTERNAL_ERROR_CODE


def error_class(code: str) -> type[ReproError]:
    """The exception class a wire code maps back to (client side).

    Unknown codes — including ``"internal"`` — come back as the generic
    :class:`~repro.errors.ServiceError` so a client never crashes on a
    code added by a newer server.
    """
    for klass, known in ERROR_CODES.items():
        if known == code:
            return klass
    return errors.ServiceError


# ----------------------------------------------------------------------
# canonical serialization + content addressing
# ----------------------------------------------------------------------
def canonical_json(obj) -> str:
    """Canonical JSON text: sorted keys, compact separators.

    Python's float repr is the shortest exact round-trip, so equal floats
    always serialize to equal text — canonical JSON equality is therefore
    a true bit-identity check on numeric payloads.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_address(obj) -> str:
    """SHA-256 hex digest of the canonical JSON of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def encode_frame(frame: dict) -> bytes:
    """One wire frame: canonical JSON plus the terminating newline."""
    return canonical_json(frame).encode("utf-8") + b"\n"


def decode_frame(line: bytes | str) -> dict:
    """Parse one frame line; :class:`ProtocolError` on anything malformed."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


# ----------------------------------------------------------------------
# request normalization
# ----------------------------------------------------------------------
_REQUIRED = object()

# Per-op parameter specs: name -> default (or _REQUIRED).  The evaluate
# defaults mirror ExperimentConfig / EvaluationConfig so an omitted
# parameter means exactly what the library default means.
PARAM_SPECS: dict[str, dict[str, object]] = {
    "ping": {},
    "stats": {},
    "profile": {
        "dataset": _REQUIRED,
        "scale": 1.0,
        "backend": "auto",
    },
    "evaluate": {
        "dataset": _REQUIRED,
        "fraction": 0.10,
        "runs": 3,
        "methods": None,  # None -> all of METHOD_NAMES
        "rc": 50.0,
        "scale": 1.0,
        "seed": 1,
        "backend": "auto",
        "exact_paths": False,
        "max_rewiring_attempts": None,
        "exact_threshold": 600,
        "path_sources": 128,
        "betweenness_pivots": 64,
        "eval_seed": 7,
        # imperfect-crawler regime (repro.sampling.faults); all-zero means
        # ideal crawling, so existing requests normalize to the same cell
        "fault_rate": 0.0,
        "rate_limit": 0,
        "truncate_at": 0,
        "churn": 0.0,
    },
    "restore": {
        "dataset": _REQUIRED,
        "fraction": 0.10,
        "rc": 50.0,
        "scale": 1.0,
        "seed": 1,
        "backend": "auto",
        "fault_rate": 0.0,
        "rate_limit": 0,
        "truncate_at": 0,
        "churn": 0.0,
    },
}

OPS: tuple[str, ...] = tuple(PARAM_SPECS)


def normalize_request(op: str, params: dict | None) -> dict:
    """Validated params for ``op`` with every default filled in.

    Normalization is what makes content addressing work: a request that
    spells out a default and one that omits it produce the same object,
    hence the same cache/coalescing key.  Numeric values are coerced to
    the default's type (``3`` and ``3.0`` must hash alike); unknown ops,
    unknown params, and missing required params raise
    :class:`ProtocolError`.
    """
    spec = PARAM_SPECS.get(op)
    if spec is None:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError(
            f"params must be a JSON object, got {type(params).__name__}"
        )
    unknown = sorted(set(params) - set(spec))
    if unknown:
        raise ProtocolError(f"unknown parameter(s) for {op!r}: {unknown}")
    normalized: dict[str, object] = {}
    for name, default in spec.items():
        if name in params:
            normalized[name] = _coerce(op, name, params[name], default)
        elif default is _REQUIRED:
            raise ProtocolError(f"missing required parameter {name!r} for {op!r}")
        else:
            normalized[name] = default
    return normalized


def _coerce(op: str, name: str, value, default):
    """Light type normalization against the spec default."""
    if default is _REQUIRED or default is None:
        if name == "methods" and value is not None:
            if not isinstance(value, (list, tuple)) or not all(
                isinstance(m, str) for m in value
            ):
                raise ProtocolError(f"{op}.{name} must be a list of method names")
            return list(value)
        return value
    if isinstance(default, bool):
        if not isinstance(value, bool):
            raise ProtocolError(f"{op}.{name} must be a boolean")
        return value
    if isinstance(default, int) and not isinstance(value, bool):
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise ProtocolError(f"{op}.{name} must be an integer")
    if isinstance(default, float):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise ProtocolError(f"{op}.{name} must be a number")
    if isinstance(default, str):
        if not isinstance(value, str):
            raise ProtocolError(f"{op}.{name} must be a string")
        return value
    return value


def request_key(op: str, params: dict) -> str:
    """Cache/coalescing key: the content address of a normalized request."""
    return content_address({"op": op, "params": params})


# ----------------------------------------------------------------------
# result payloads
# ----------------------------------------------------------------------
def aggregates_to_payload(
    aggregates: dict[str, MethodAggregate], include_timings: bool = True
) -> dict:
    """JSON-able form of a cell's per-method aggregates.

    With ``include_timings=False`` every field is a deterministic
    function of the experiment config on fixed seeds — the exact subset
    the serial↔parallel bit-identity contract covers — so its canonical
    JSON is byte-comparable against a direct ``run_experiment`` call.
    """
    payload: dict[str, dict] = {}
    for method, agg in aggregates.items():
        entry = {
            "per_property": {name: agg.per_property[name] for name in PROPERTY_NAMES},
            "average_l1": agg.average_l1,
            "std_l1": agg.std_l1,
        }
        if include_timings:
            entry["total_seconds"] = agg.total_seconds
            entry["rewiring_seconds"] = agg.rewiring_seconds
        payload[method] = entry
    return payload
