"""Request counters and latency quantiles for the ``stats`` op.

Everything here is plain in-process bookkeeping on the event loop thread
(no locks needed: asyncio handlers never run concurrently with each
other), sized O(1) per request — latency samples live in a bounded ring
so a long-lived server's memory does not grow with traffic.
"""

from __future__ import annotations

import math
import time
from collections import Counter, deque

DEFAULT_SAMPLE_LIMIT = 4096


def quantile(samples: list[float], q: float) -> float:
    """Nearest-rank quantile of ``samples`` (``q`` in [0, 1]).

    Returns ``nan`` for an empty sample set; ``q=0.5`` on one sample is
    that sample.  Nearest-rank keeps the answer an actual observed value.
    """
    if not samples:
        return math.nan
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class LatencyRecorder:
    """A bounded ring of request latencies with summary quantiles."""

    def __init__(self, sample_limit: int = DEFAULT_SAMPLE_LIMIT) -> None:
        self._samples: deque[float] = deque(maxlen=sample_limit)
        self.count = 0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def summary(self) -> dict[str, float | int]:
        """Count plus p50/p90/p99 and mean over the retained window, in
        milliseconds (requests are sub-second; ms reads naturally)."""
        samples = list(self._samples)
        to_ms = 1000.0
        return {
            "count": self.count,
            "p50_ms": quantile(samples, 0.50) * to_ms if samples else None,
            "p90_ms": quantile(samples, 0.90) * to_ms if samples else None,
            "p99_ms": quantile(samples, 0.99) * to_ms if samples else None,
            "mean_ms": (sum(samples) / len(samples)) * to_ms if samples else None,
        }


class ServiceMetrics:
    """All serving counters in one place.

    The coalescing ratio is *requests served per computation* among the
    requests that reached the compute path: ``(computations + coalesced)
    / computations``.  It is 1.0 when every compute request paid its own
    computation and grows as duplicate in-flight requests share one.
    """

    def __init__(self) -> None:
        self.started_monotonic = time.monotonic()
        self.requests_total = 0
        self.requests_by_op: Counter[str] = Counter()
        self.errors_by_code: Counter[str] = Counter()
        self.timeouts = 0
        self.computations = 0
        self.coalesced = 0
        self.progress_frames = 0
        self.overall_latency = LatencyRecorder()
        self.latency_by_op: dict[str, LatencyRecorder] = {}

    def record_request(self, op: str | None) -> None:
        self.requests_total += 1
        if op is not None:
            self.requests_by_op[op] += 1

    def record_error(self, code: str) -> None:
        self.errors_by_code[code] += 1

    def record_latency(self, op: str | None, seconds: float) -> None:
        self.overall_latency.record(seconds)
        if op is not None:
            recorder = self.latency_by_op.get(op)
            if recorder is None:
                recorder = self.latency_by_op[op] = LatencyRecorder()
            recorder.record(seconds)

    def coalescing_ratio(self) -> float:
        if self.computations == 0:
            return 0.0
        return (self.computations + self.coalesced) / self.computations

    def snapshot(self) -> dict:
        """JSON-able stats block (the server adds cache/truth sections)."""
        return {
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "requests": {
                "total": self.requests_total,
                "by_op": dict(self.requests_by_op),
            },
            "errors": {
                "total": sum(self.errors_by_code.values()),
                "by_code": dict(self.errors_by_code),
            },
            "timeouts": self.timeouts,
            "computations": self.computations,
            "coalesced": self.coalesced,
            "coalescing_ratio": self.coalescing_ratio(),
            "progress_frames": self.progress_frames,
            "latency": {
                "overall": self.overall_latency.summary(),
                "by_op": {
                    op: recorder.summary()
                    for op, recorder in self.latency_by_op.items()
                },
            },
        }
