"""Worker-side request handlers: pure, picklable, deterministic.

Each handler takes one *normalized* params dict
(:func:`repro.service.protocol.normalize_request`) and returns
``(payload, truth_delta)``: a JSON-able response payload and the delta
this item added to the worker process's truth-memo counters (merged back
parent-side so the server's ``stats`` op reports real cache activity
under a process pool — the same mechanism the executor layer uses).

Everything here is module-level so the server can ship work into a
``concurrent.futures.ProcessPoolExecutor`` unchanged; the handlers reuse
the engine exactly as the harness does — ``run_experiment`` for
``evaluate``, :func:`~repro.restore.restorer.restore_graph` for
``restore`` — so a service response is the same object a direct library
call produces (the bench asserts bit-identity on the deterministic
fields).
"""

from __future__ import annotations

from repro.experiments.methods import METHOD_NAMES
from repro.experiments.runner import (
    ExperimentConfig,
    run_experiment,
    shared_dataset_graph,
    truth_cache_stats,
)
from repro.metrics.suite import EvaluationConfig
from repro.sampling.faults import policy_from_knobs
from repro.service.protocol import aggregates_to_payload

_STAT_NAMES = ("hits", "misses", "evictions")


def run_op(op: str, params: dict) -> tuple[dict, dict]:
    """Dispatch one normalized request to its handler (the single
    function the server submits to its executor)."""
    before = truth_cache_stats(merged=False)
    payload = _HANDLERS[op](params)
    after = truth_cache_stats(merged=False)
    delta = {name: after[name] - before[name] for name in _STAT_NAMES}
    return payload, delta


def evaluate_config(params: dict) -> ExperimentConfig:
    """The :class:`ExperimentConfig` an ``evaluate`` request describes.

    Exposed (and used by the bench) so the direct-comparison path builds
    the exact same cell the service computes.
    """
    methods = params["methods"]
    evaluation = EvaluationConfig(
        exact_threshold=params["exact_threshold"],
        path_sources=params["path_sources"],
        betweenness_pivots=params["betweenness_pivots"],
        seed=params["eval_seed"],
        backend=params["backend"],
        exact_paths=params["exact_paths"],
    )
    return ExperimentConfig(
        dataset=params["dataset"],
        fraction=params["fraction"],
        runs=params["runs"],
        methods=tuple(methods) if methods is not None else METHOD_NAMES,
        rc=params["rc"],
        scale=params["scale"],
        seed=params["seed"],
        evaluation=evaluation,
        max_rewiring_attempts=params["max_rewiring_attempts"],
        backend=params["backend"],
        fault_policy=_fault_policy(params),
    )


def _fault_policy(params: dict):
    """The crawl regime a request's fault knobs describe (None = ideal).

    The knobs are normalized (defaulted + coerced) before they get here,
    so two requests meaning the same regime produce equal policies —
    and, upstream, the same content address.
    """
    return policy_from_knobs(
        fault_rate=params["fault_rate"],
        rate_limit=params["rate_limit"],
        truncate_at=params["truncate_at"],
        churn=params["churn"],
    )


def _handle_evaluate(params: dict) -> dict:
    """One full experiment cell: runs × methods × 12-property distances.

    ``aggregates`` carries only the deterministic fields (bit-identical
    to a direct ``run_experiment`` on the same params); the wall-clock
    means live separately under ``timings``.
    """
    config = evaluate_config(params)
    aggregates = run_experiment(config)
    return {
        "op": "evaluate",
        "dataset": config.dataset,
        "fraction": config.fraction,
        "runs": config.runs,
        "seed": config.seed,
        "aggregates": aggregates_to_payload(aggregates, include_timings=False),
        "timings": {
            method: {
                "total_seconds": agg.total_seconds,
                "rewiring_seconds": agg.rewiring_seconds,
            }
            for method, agg in aggregates.items()
        },
    }


def _handle_restore(params: dict) -> dict:
    """One crawl-and-restore: the proposed method end to end.

    The crawl runs on the published shared-memory snapshot when the
    server shipped one for this (dataset, scale) — ``restore_graph``
    sees the graph only through the ``GraphAccess`` neighbor-query
    surface, which the snapshot serves bit-identically.
    """
    from repro.graph.datasets import load_dataset
    from repro.restore.restorer import restore_graph
    from repro.sampling.access import GraphAccess

    graph = shared_dataset_graph(params["dataset"], params["scale"])
    if graph is None:
        graph = load_dataset(params["dataset"], scale=params["scale"])
    target = max(3, int(round(params["fraction"] * graph.num_nodes)))
    policy = _fault_policy(params)
    if policy is None:
        access = GraphAccess(graph)
    else:
        from repro.sampling.faults import make_faulty_access, spawn_fault_seed

        # same derivation as the harness: the fault stream is a dedicated
        # child of the request seed, so identical requests replay
        # identical degraded crawls (shared snapshot or not)
        access = make_faulty_access(
            graph,
            policy,
            fault_seed=spawn_fault_seed(params["seed"]),
            budget=target,
        )
    result = restore_graph(
        access,
        target,
        rc=params["rc"],
        rng=params["seed"],
        backend=params["backend"],
    )
    return {
        "op": "restore",
        "dataset": params["dataset"],
        "fraction": params["fraction"],
        "seed": params["seed"],
        "summary": result.summary(),
    }


def _handle_profile(params: dict) -> dict:
    """Structural profile of a dataset (12 properties + core/periphery)."""
    from repro.graph.datasets import load_dataset
    from repro.metrics.profile import graph_profile
    from repro.metrics.suite import EvaluationConfig

    graph = load_dataset(params["dataset"], scale=params["scale"])
    profile = graph_profile(graph, EvaluationConfig(backend=params["backend"]))
    props = profile.properties
    return {
        "op": "profile",
        "dataset": params["dataset"],
        "scale": params["scale"],
        "nodes": profile.num_nodes,
        "edges": profile.num_edges,
        "average_degree": props.average_degree,
        "clustering": props.clustering,
        "average_path_length": props.average_path_length,
        "diameter": props.diameter,
        "largest_eigenvalue": props.largest_eigenvalue,
        "degeneracy": profile.degeneracy,
        "periphery_fraction": profile.periphery_fraction,
    }


# ops the compute path serves; ping/stats are answered on the event loop
_HANDLERS = {
    "evaluate": _handle_evaluate,
    "restore": _handle_restore,
    "profile": _handle_profile,
}

COMPUTE_OPS: tuple[str, ...] = tuple(_HANDLERS)
