"""``repro.service`` — restoration-as-a-service on top of the engine.

A long-running asyncio server that answers restore/evaluate/profile
requests over a newline-delimited JSON TCP protocol, reusing the
experiment harness unchanged: every computation is the same pure,
deterministically seeded work-item the executor layer runs, so a service
response is bit-identical (on the deterministic fields) to calling the
library directly.

Layers::

    protocol.py   frames, content addressing, stable error codes
    cache.py      content-addressed LRU over response payloads
    metrics.py    request counters + latency quantiles (stats op)
    handlers.py   picklable worker-side compute entry points
    server.py     ReproService: asyncio front end, coalescing, drain
    client.py     sync + asyncio clients (CLI, tests, bench)

Quickstart::

    # server
    python -m repro.cli serve --port 7331 --jobs 2

    # client
    python -m repro.cli request evaluate --port 7331 \\
        --params '{"dataset": "anybeat", "fraction": 0.1, "runs": 1}'

or in code::

    from repro.service import ReproService, AsyncServiceClient
"""

from repro.service.cache import ContentAddressedLRU
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.metrics import LatencyRecorder, ServiceMetrics, quantile
from repro.service.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    aggregates_to_payload,
    canonical_json,
    content_address,
    decode_frame,
    encode_frame,
    error_class,
    error_code,
    normalize_request,
    request_key,
)
from repro.service.server import DEFAULT_PORT, ReproService, serve

__all__ = [
    "ReproService",
    "serve",
    "DEFAULT_PORT",
    "ServiceClient",
    "AsyncServiceClient",
    "ContentAddressedLRU",
    "ServiceMetrics",
    "LatencyRecorder",
    "quantile",
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "error_code",
    "error_class",
    "canonical_json",
    "content_address",
    "request_key",
    "normalize_request",
    "encode_frame",
    "decode_frame",
    "aggregates_to_payload",
]
