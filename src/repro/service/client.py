"""Clients for the restoration service: one sync, one asyncio.

:class:`ServiceClient` is the blocking client the ``repro request`` CLI
uses — plain sockets, no event loop.  :class:`AsyncServiceClient` is the
asyncio twin the tests and the load bench drive many of concurrently.

Both speak the protocol of :mod:`repro.service.protocol`: send one
request frame, consume progress frames until the terminal frame, then
either return the ``result`` payload or raise the exception class the
``error_code`` maps back to (:func:`~repro.service.protocol.error_class`).
"""

from __future__ import annotations

import socket

from repro.errors import ProtocolError
from repro.service.protocol import decode_frame, encode_frame, error_class


def _terminal(frame: dict, on_progress=None):
    """Classify one frame: returns the result payload for a ``result``
    frame, raises for an ``error`` frame, and returns ``None`` (after
    invoking ``on_progress``) for a ``progress`` frame."""
    event = frame.get("event")
    if event == "result":
        return frame.get("result"), True
    if event == "error":
        klass = error_class(frame.get("error_code", "service"))
        raise klass(frame.get("message", "service error"))
    if event == "progress":
        if on_progress is not None:
            on_progress(frame)
        return None, False
    raise ProtocolError(f"unexpected frame event {event!r}")


class ServiceClient:
    """Blocking client over one TCP connection (context manager)."""

    def __init__(
        self, host: str, port: int, connect_timeout: float | None = 10.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        # progress frames can be minutes apart on long rewiring runs; the
        # per-request deadline is the *server's* job (timeout field), so
        # the socket itself stays blocking once connected
        self._sock.settimeout(None)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def request(
        self,
        op: str,
        params: dict | None = None,
        timeout: float | None = None,
        on_progress=None,
    ) -> dict:
        """Send one request; block until its terminal frame.

        Returns the result payload; raises the mapped
        :class:`~repro.errors.ReproError` subclass on an error frame.
        ``on_progress`` receives each progress frame as it arrives.
        """
        self._next_id += 1
        frame = {"id": f"c{self._next_id}", "op": op, "params": params or {}}
        if timeout is not None:
            frame["timeout"] = timeout
        self._sock.sendall(encode_frame(frame))
        while True:
            line = self._file.readline()
            if not line:
                raise ProtocolError("connection closed before the terminal frame")
            payload, done = _terminal(decode_frame(line), on_progress)
            if done:
                return payload


class AsyncServiceClient:
    """Asyncio client over one connection (used by tests and the bench)."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServiceClient":
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def request_frames(
        self, op: str, params: dict | None = None, timeout: float | None = None
    ) -> list[dict]:
        """All frames of one request, progress included, terminal last —
        the raw view tests assert against (never raises on error frames)."""
        self._next_id += 1
        frame = {"id": f"a{self._next_id}", "op": op, "params": params or {}}
        if timeout is not None:
            frame["timeout"] = timeout
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        frames: list[dict] = []
        while True:
            line = await self._reader.readline()
            if not line:
                raise ProtocolError("connection closed before the terminal frame")
            frames.append(decode_frame(line))
            if frames[-1].get("event") in ("result", "error"):
                return frames

    async def request(
        self,
        op: str,
        params: dict | None = None,
        timeout: float | None = None,
        on_progress=None,
    ) -> dict:
        """Like :meth:`ServiceClient.request`, on the event loop."""
        frames = await self.request_frames(op, params, timeout)
        for frame in frames[:-1]:
            if on_progress is not None:
                on_progress(frame)
        payload, _ = _terminal(frames[-1])
        return payload
