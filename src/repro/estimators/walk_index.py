"""Shared index structures over a sampling list.

Several estimators need the same derived views of the walk — the aligned
degree sequence, per-node visit positions, neighbor sets for adjacency
tests, and the collision threshold ``M = 0.025 r`` — so they are computed
once in a :class:`WalkIndex` and shared.
"""

from __future__ import annotations

from functools import cached_property

from repro.errors import EstimationError
from repro.graph.multigraph import Node
from repro.sampling.walkers import SamplingList

# Fraction of the walk length used as the minimum index separation for the
# "independent pair" sets of the collision / induced-edge estimators
# (Hardiman & Katzir's convention, adopted by the paper).
INDEX_GAP_FRACTION = 0.025


class WalkIndex:
    """Derived views over one walk, built lazily and memoized."""

    def __init__(self, walk: SamplingList, gap_fraction: float = INDEX_GAP_FRACTION):
        if walk.length < 3:
            raise EstimationError(
                f"walk of length {walk.length} is too short to estimate from"
            )
        if not 0.0 <= gap_fraction < 1.0:
            raise EstimationError(f"gap fraction must be in [0, 1), got {gap_fraction}")
        self.walk = walk
        self.gap_fraction = gap_fraction

    @property
    def r(self) -> int:
        """Walk length."""
        return self.walk.length

    @cached_property
    def gap(self) -> int:
        """The threshold ``M``: pairs of walk positions at least ``M`` apart
        are treated as independently sampled (at least 1)."""
        return max(1, int(self.gap_fraction * self.r))

    @cached_property
    def degrees(self) -> list[int]:
        """``d(x_1) .. d(x_r)`` aligned with the walk."""
        return self.walk.degree_sequence()

    @cached_property
    def positions(self) -> dict[Node, list[int]]:
        """0-based visit positions of each distinct node, ascending."""
        pos: dict[Node, list[int]] = {}
        for i, node in enumerate(self.walk.nodes):
            pos.setdefault(node, []).append(i)
        return pos

    @cached_property
    def neighbor_sets(self) -> dict[Node, set[Node]]:
        """Distinct-neighbor sets of every visited node (adjacency tests)."""
        return {u: set(nbrs) for u, nbrs in self.walk.neighbors.items()}

    @cached_property
    def num_far_pairs(self) -> int:
        """``|I|``: ordered position pairs ``(i, j)`` with ``|i - j| >= M``.

        Closed form: from all ``r^2`` ordered pairs remove the band
        ``|i - j| <= M - 1``, whose size is ``r + 2 * sum_{d=1}^{M-1}(r-d)``.
        """
        r, m = self.r, self.gap
        band = r  # the diagonal i == j
        width = min(m - 1, r - 1)
        band += 2 * sum(r - d for d in range(1, width + 1))
        return r * r - band

    def adjacent(self, u: Node, v: Node) -> bool:
        """True when visited nodes ``u`` and ``v`` are adjacent in ``G``."""
        nbrs = self.neighbor_sets.get(u)
        return nbrs is not None and v in nbrs

    def far_ordered_pair_count(self, u: Node, v: Node) -> int:
        """Number of ordered pairs ``(i, j)`` with ``x_i = u``, ``x_j = v``
        and ``|i - j| >= M`` (``u != v`` assumed).

        Total cross pairs minus near pairs; near pairs are counted with a
        two-pointer sweep over the (short) sorted position lists.
        """
        pu = self.positions.get(u, ())
        pv = self.positions.get(v, ())
        total = len(pu) * len(pv)
        if total == 0:
            return 0
        return total - _near_cross_pairs(pu, pv, self.gap)

    def far_collision_pairs(self) -> int:
        """Number of ordered pairs ``(i, j) in I`` with ``x_i == x_j``."""
        m = self.gap
        count = 0
        for pos in self.positions.values():
            c = len(pos)
            if c < 2:
                continue
            near = 0
            left = 0
            for right in range(c):
                while pos[right] - pos[left] > m - 1:
                    left += 1
                near += right - left  # unordered near pairs ending at right
            count += c * (c - 1) - 2 * near
        return count


def _near_cross_pairs(pu, pv, gap: int) -> int:
    """Ordered pairs ``(p, q)`` with ``p in pu``, ``q in pv``,
    ``|p - q| <= gap - 1`` (both lists ascending)."""
    count = 0
    lo = 0
    hi = 0
    for p in pu:
        while lo < len(pv) and pv[lo] < p - (gap - 1):
            lo += 1
        while hi < len(pv) and pv[hi] <= p + (gap - 1):
            hi += 1
        count += hi - lo
    return count
