"""Joint-degree-distribution estimator (hybrid IE / TE of Gjoka et al.).

Two complementary estimators are combined (Section III-E, unbiasedness
proved in the paper's Appendix A):

* **Traversed edges (TE)** — each consecutive walk step samples an edge
  uniformly from the edge stationary distribution, so the empirical degree
  pair frequency of the ``r - 1`` steps estimates ``P(k, k')`` directly.
  Accurate for the low-degree pairs the walk traverses often.
* **Induced edges (IE)** — every far-apart position pair ``(i, j)`` is an
  (approximately) independent draw of two degree-biased nodes; counting the
  adjacent ones and re-weighting by ``n^ k̄^ / (k k' |I|)`` estimates the
  same quantity.  Accurate for high-degree pairs, which far pairs hit often
  even when single steps rarely traverse them.

The hybrid uses IE when ``k + k' >= 2 k̄^`` and TE otherwise.
"""

from __future__ import annotations

from repro.estimators.average_degree import estimate_average_degree
from repro.estimators.node_count import estimate_num_nodes
from repro.estimators.walk_index import WalkIndex
from repro.sampling.walkers import SamplingList

DegreePair = tuple[int, int]


def traversed_edges_estimate(
    walk: SamplingList | WalkIndex,
    backend: str = "python",
) -> dict[DegreePair, float]:
    """``P^_TE(k, k')`` as a sparse symmetric mapping.

    ``P^_TE(k,k') = (1/(2(r-1))) sum_i [1{d_i=k, d_i+1=k'} + 1{d_i=k', d_i+1=k}]``.

    ``backend`` selects the pair-counting path: ``"python"`` is the
    reference per-step loop; ``"csr"`` (or ``"auto"`` on long walks)
    vectorizes the count with the engine's walk-sequence kernel — same
    cells, values equal to float round-off (counts are accumulated
    multiplicatively instead of additively).
    """
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    degrees = index.degrees
    r = index.r
    est: dict[DegreePair, float] = {}
    unit = 1.0 / (2.0 * (r - 1))
    if backend != "python":
        from repro.engine.dispatch import resolve_backend
        from repro.engine.kernels import traversed_pair_counts

        if resolve_backend(backend, size=r) == "csr":
            return {
                pair: c * unit
                for pair, c in traversed_pair_counts(degrees).items()
            }
    for i in range(r - 1):
        k, kp = degrees[i], degrees[i + 1]
        est[(k, kp)] = est.get((k, kp), 0.0) + unit
        est[(kp, k)] = est.get((kp, k), 0.0) + unit
    return est


def induced_edges_estimate(
    walk: SamplingList | WalkIndex,
    n_hat: float | None = None,
    k_hat: float | None = None,
) -> dict[DegreePair, float]:
    """``P^_IE(k, k') = n^ k̄^ Φ(k, k')`` as a sparse symmetric mapping.

    ``Φ(k,k')`` sums adjacency over far position pairs; instead of O(r^2)
    pair enumeration, we iterate over adjacent pairs of *distinct sampled
    nodes* and count their far position pairs combinatorially.
    """
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    if n_hat is None:
        n_hat = estimate_num_nodes(index)
    if k_hat is None:
        k_hat = estimate_average_degree(index)
    size_i = index.num_far_pairs
    est: dict[DegreePair, float] = {}
    if size_i <= 0:
        return est
    scale = n_hat * k_hat / size_i
    nodes = list(index.positions)
    node_rank = {u: i for i, u in enumerate(nodes)}
    for u in nodes:
        du = len(index.walk.neighbors[u])
        for v in index.neighbor_sets[u]:
            if v == u or v not in node_rank or node_rank[v] <= node_rank[u]:
                continue  # each sampled adjacent pair handled once
            dv = len(index.walk.neighbors[v])
            pairs_uv = index.far_ordered_pair_count(u, v)
            pairs_vu = index.far_ordered_pair_count(v, u)
            contrib = scale * (pairs_uv + pairs_vu) / (du * dv)
            # the (k, k') and (k', k) cells each receive half of the
            # ordered-pair mass, keeping the mapping symmetric
            est[(du, dv)] = est.get((du, dv), 0.0) + contrib / 2.0
            est[(dv, du)] = est.get((dv, du), 0.0) + contrib / 2.0
    return est


def estimate_joint_degree_distribution(
    walk: SamplingList | WalkIndex,
    n_hat: float | None = None,
    k_hat: float | None = None,
    backend: str = "python",
) -> dict[DegreePair, float]:
    """Hybrid ``P^(k, k')``: IE for ``k + k' >= 2 k̄^``, TE otherwise.

    Returns a sparse symmetric mapping over the degree pairs observed by
    either sub-estimator (cells selected by the hybrid rule but absent from
    the chosen sub-estimator are simply missing, i.e. estimated as 0).
    ``backend`` is forwarded to the traversed-edges pair counting.
    """
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    if k_hat is None:
        k_hat = estimate_average_degree(index)
    te = traversed_edges_estimate(index, backend=backend)
    ie = induced_edges_estimate(index, n_hat=n_hat, k_hat=k_hat)
    threshold = 2.0 * k_hat
    hybrid: dict[DegreePair, float] = {}
    for pair, value in te.items():
        if pair[0] + pair[1] < threshold and value > 0.0:
            hybrid[pair] = value
    for pair, value in ie.items():
        if pair[0] + pair[1] >= threshold and value > 0.0:
            hybrid[pair] = value
    return hybrid
