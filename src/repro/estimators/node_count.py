"""Collision-based estimator of the number of nodes.

``n^ = (sum over far pairs of d_xi / d_xj) / (number of far collisions)``
(Katzir et al. / Hardiman–Katzir, Section III-E of the paper), where "far"
means walk positions at least ``M = 0.025 r`` apart.

Both sums are computed in O(r) / O(r log r): the ratio sum via prefix sums
of ``1/d`` over the sliding near-band, the collision count via two-pointer
sweeps over per-node position lists.
"""

from __future__ import annotations

from repro.errors import EstimationError
from repro.estimators.walk_index import WalkIndex
from repro.sampling.walkers import SamplingList


def estimate_num_nodes(
    walk: SamplingList | WalkIndex,
    zero_collision_fallback: bool = True,
) -> float:
    """Estimate ``n`` from a walk.

    Parameters
    ----------
    walk:
        A sampling list, or a pre-built :class:`WalkIndex` (pass the index
        when calling several estimators on the same walk).
    zero_collision_fallback:
        Short walks on large graphs may observe no far collisions, making
        the estimator undefined.  With the fallback enabled (default) the
        collision count is floored at 1, yielding a deliberately
        conservative over-estimate; disabled, an
        :class:`~repro.errors.EstimationError` is raised instead.
    """
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    numerator = _far_degree_ratio_sum(index)
    collisions = index.far_collision_pairs()
    if collisions == 0:
        if not zero_collision_fallback:
            raise EstimationError(
                "no node collisions at distance >= M in the walk; "
                "the walk is too short to estimate n"
            )
        collisions = 1
    return numerator / collisions


def _far_degree_ratio_sum(index: WalkIndex) -> float:
    """``sum_{(i,j): |i-j| >= M} d_xi / d_xj`` in O(r) via prefix sums."""
    degrees = index.degrees
    r = index.r
    m = index.gap
    inv = [1.0 / d for d in degrees]
    prefix_inv = [0.0] * (r + 1)
    for i, v in enumerate(inv):
        prefix_inv[i + 1] = prefix_inv[i] + v
    total_inv = prefix_inv[r]
    full = 0.0
    for i, d in enumerate(degrees):
        lo = max(0, i - (m - 1))
        hi = min(r - 1, i + (m - 1))
        near_inv = prefix_inv[hi + 1] - prefix_inv[lo]
        full += d * (total_inv - near_inv)
    return full
