"""Average-degree estimator.

``k̄^ = 1 / Φ̄`` with ``Φ̄ = (1/r) sum_i 1/d(x_i)`` — the harmonic-mean
re-weighting of Gjoka et al. / Dasgupta et al. (Section III-E).  The walk
visits nodes proportionally to degree, so the inverse-degree average is an
unbiased estimate of ``1/k̄`` under the stationary distribution.
"""

from __future__ import annotations

from repro.estimators.walk_index import WalkIndex
from repro.sampling.walkers import SamplingList


def mean_inverse_degree(walk: SamplingList | WalkIndex) -> float:
    """``Φ̄ = (1/r) sum_i 1/d(x_i)`` (shared by several estimators)."""
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    degrees = index.degrees
    return sum(1.0 / d for d in degrees) / len(degrees)


def estimate_average_degree(walk: SamplingList | WalkIndex) -> float:
    """Estimate the average degree ``k̄`` of the hidden graph."""
    return 1.0 / mean_inverse_degree(walk)
