"""Re-weighted random-walk estimators of local structural properties.

Section III-E of the paper: given the sampling list ``L`` of a simple
random walk, estimate the number of nodes (collision estimator of Katzir
et al. / Hardiman–Katzir), the average degree (Gjoka et al.), the degree
distribution, the joint degree distribution (hybrid induced-edges /
traversed-edges estimator of Gjoka et al., proved unbiased in the paper's
Appendix A), and the degree-dependent clustering coefficient
(Hardiman–Katzir).

:func:`estimate_local_properties` bundles the five into the
:class:`LocalEstimates` record consumed by the restoration pipeline.
"""

from repro.estimators.walk_index import WalkIndex
from repro.estimators.node_count import estimate_num_nodes
from repro.estimators.average_degree import estimate_average_degree
from repro.estimators.degree_distribution import estimate_degree_distribution
from repro.estimators.joint_degree import (
    estimate_joint_degree_distribution,
    induced_edges_estimate,
    traversed_edges_estimate,
)
from repro.estimators.clustering import estimate_degree_clustering
from repro.estimators.local import LocalEstimates, estimate_local_properties
from repro.estimators.extras import (
    BatchEstimate,
    batch_means,
    estimate_global_clustering,
    estimate_num_edges,
    estimate_triangle_count,
)

__all__ = [
    "BatchEstimate",
    "batch_means",
    "estimate_global_clustering",
    "estimate_num_edges",
    "estimate_triangle_count",
    "WalkIndex",
    "estimate_num_nodes",
    "estimate_average_degree",
    "estimate_degree_distribution",
    "estimate_joint_degree_distribution",
    "induced_edges_estimate",
    "traversed_edges_estimate",
    "estimate_degree_clustering",
    "LocalEstimates",
    "estimate_local_properties",
]
