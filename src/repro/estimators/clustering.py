"""Degree-dependent clustering-coefficient estimator (Hardiman–Katzir).

``c̄^(k) = Φ_c(k) / Φ(k)`` with
``Φ_c(k) = (1/((k-1)(r-2))) sum_{i=2}^{r-1} 1{d(x_i)=k} A[x_{i-1}, x_{i+1}]``
(Section III-E).  The walk's consecutive triple ``x_{i-1}, x_i, x_{i+1}``
closes a triangle exactly when the outer pair is adjacent; re-weighting by
degree yields the per-degree clustering coefficient.
"""

from __future__ import annotations

from repro.estimators.degree_distribution import degree_visit_weights
from repro.estimators.walk_index import WalkIndex
from repro.sampling.walkers import SamplingList


def estimate_degree_clustering(
    walk: SamplingList | WalkIndex,
) -> dict[int, float]:
    """Estimate ``{c̄(k)}`` as a sparse ``degree -> coefficient`` mapping.

    Degrees observed in the walk map to their estimates (``c̄^(1) = 0`` by
    definition); unobserved degrees are absent.
    """
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    nodes = index.walk.nodes
    degrees = index.degrees
    r = index.r
    closed_weight: dict[int, float] = {}
    for i in range(1, r - 1):
        k = degrees[i]
        if k < 2:
            continue
        if index.adjacent(nodes[i - 1], nodes[i + 1]):
            closed_weight[k] = closed_weight.get(k, 0.0) + 1.0
    phi = degree_visit_weights(index)
    estimate: dict[int, float] = {}
    for k in phi:
        if k < 2:
            estimate[k] = 0.0
            continue
        phi_c = closed_weight.get(k, 0.0) / ((k - 1) * (r - 2))
        estimate[k] = min(1.0, phi_c / phi[k]) if phi[k] > 0 else 0.0
    return estimate
