"""Additional re-weighted estimators and uncertainty quantification.

Beyond the five estimates the restoration pipeline consumes, the paper's
related-work line of research provides further walk-based estimators that
round out the library surface:

* :func:`estimate_num_edges` — ``m^ = n^ k̄^ / 2`` (handshake),
* :func:`estimate_global_clustering` — the Hardiman–Katzir global
  clustering coefficient from consecutive triples,
* :func:`estimate_triangle_count` — implied total triangle count,
* :func:`batch_means` — batch-means standard errors for *any* walk
  functional, the standard uncertainty device for Markov-chain samples
  (consecutive walk positions are correlated, so naive iid standard errors
  are invalid; batching restores approximate independence).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import EstimationError
from repro.estimators.average_degree import estimate_average_degree
from repro.estimators.clustering import estimate_degree_clustering
from repro.estimators.degree_distribution import estimate_degree_distribution
from repro.estimators.node_count import estimate_num_nodes
from repro.estimators.walk_index import WalkIndex
from repro.sampling.walkers import SamplingList


def estimate_num_edges(walk: SamplingList | WalkIndex) -> float:
    """``m^ = n^ k̄^ / 2`` — implied edge count of the hidden graph."""
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    return estimate_num_nodes(index) * estimate_average_degree(index) / 2.0


def estimate_global_clustering(walk: SamplingList | WalkIndex) -> float:
    """Global (mean-local) clustering coefficient ``c̄`` of the hidden graph.

    Combines the degree-dependent estimate with the degree distribution:
    ``c̄^ = sum_k P^(k) c̄^(k)`` — the mixture the paper's property (5)
    takes over nodes.
    """
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    pk = estimate_degree_distribution(index)
    ck = estimate_degree_clustering(index)
    return sum(p * ck.get(k, 0.0) for k, p in pk.items())


def estimate_triangle_count(walk: SamplingList | WalkIndex) -> float:
    """Implied number of triangles in the hidden graph.

    ``T^ = (1/3) sum_k n^(k) c̄^(k) C(k, 2)`` — each degree class
    contributes its node count times the expected closed wedges per node;
    dividing by 3 de-duplicates the per-corner counting.
    """
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    n_hat = estimate_num_nodes(index)
    pk = estimate_degree_distribution(index)
    ck = estimate_degree_clustering(index)
    total = 0.0
    for k, p in pk.items():
        if k >= 2:
            total += n_hat * p * ck.get(k, 0.0) * k * (k - 1) / 2.0
    return total / 3.0


@dataclass(frozen=True)
class BatchEstimate:
    """A point estimate with a batch-means standard error."""

    value: float
    standard_error: float
    num_batches: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI (default 95%)."""
        half = z * self.standard_error
        return (self.value - half, self.value + half)


def batch_means(
    walk: SamplingList,
    estimator: Callable[[SamplingList], float],
    num_batches: int = 10,
) -> BatchEstimate:
    """Batch-means estimate of ``estimator`` over ``walk``.

    The walk is split into ``num_batches`` contiguous segments, the
    estimator is applied to each, and the spread of the per-batch values
    yields a standard error for the full-walk point estimate.  Segments
    inherit the walk's recorded adjacency, so any estimator in this package
    can be passed directly::

        est = batch_means(walk, estimate_average_degree, num_batches=8)
        lo, hi = est.confidence_interval()

    Batches shorter than 3 samples cannot feed the estimators; the walk
    must satisfy ``length >= 3 * num_batches``.
    """
    if num_batches < 2:
        raise EstimationError("batch_means needs at least 2 batches")
    r = walk.length
    if r < 3 * num_batches:
        raise EstimationError(
            f"walk of length {r} too short for {num_batches} batches "
            "(need >= 3 samples per batch)"
        )
    size = r // num_batches
    values: list[float] = []
    for b in range(num_batches):
        start = b * size
        stop = r if b == num_batches - 1 else start + size
        segment = SamplingList()
        for node in walk.nodes[start:stop]:
            segment.record(node, walk.neighbors[node])
        values.append(float(estimator(segment)))
    point = float(estimator(walk))
    mean_b = sum(values) / num_batches
    var_b = sum((v - mean_b) ** 2 for v in values) / (num_batches - 1)
    stderr = math.sqrt(var_b / num_batches)
    return BatchEstimate(value=point, standard_error=stderr, num_batches=num_batches)
