"""Bundle of the five local-property estimates (the pipeline's input record).

The restoration pipeline (both the proposed method and the Gjoka baseline)
consumes exactly the five estimates of Section III-E; they are computed
once from a shared :class:`WalkIndex` and carried in a single immutable
:class:`LocalEstimates` record together with the derived quantities the
target-construction phases need (``n^ P^(k)``, ``m^(k,k') = n^ k̄^ P^(k,k')
/ mu(k,k')``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.estimators.average_degree import estimate_average_degree
from repro.estimators.clustering import estimate_degree_clustering
from repro.estimators.degree_distribution import estimate_degree_distribution
from repro.estimators.joint_degree import (
    DegreePair,
    estimate_joint_degree_distribution,
)
from repro.estimators.node_count import estimate_num_nodes
from repro.estimators.walk_index import WalkIndex
from repro.sampling.walkers import SamplingList


def mu(k: int, k_prime: int) -> int:
    """Normalization factor of the joint degree distribution: 2 on the
    diagonal, 1 off it (Eq. (3) of the paper)."""
    return 2 if k == k_prime else 1


@dataclass(frozen=True)
class LocalEstimates:
    """The five re-weighted estimates plus derived target quantities."""

    num_nodes: float
    average_degree: float
    degree_distribution: dict[int, float] = field(default_factory=dict)
    joint_degree_distribution: dict[DegreePair, float] = field(default_factory=dict)
    degree_clustering: dict[int, float] = field(default_factory=dict)
    walk_length: int = 0

    # ------------------------------------------------------------------
    # derived quantities used by the construction phases
    # ------------------------------------------------------------------
    def p_degree(self, k: int) -> float:
        """``P^(k)`` (0 for unobserved degrees)."""
        return self.degree_distribution.get(k, 0.0)

    def p_joint(self, k: int, k_prime: int) -> float:
        """``P^(k, k')`` (0 for unobserved pairs)."""
        return self.joint_degree_distribution.get((k, k_prime), 0.0)

    def clustering(self, k: int) -> float:
        """``c̄^(k)`` (0 for unobserved degrees)."""
        return self.degree_clustering.get(k, 0.0)

    def n_of_degree(self, k: int) -> float:
        """``n^(k) = n^ P^(k)``: the raw (real-valued) target for the number
        of degree-``k`` nodes."""
        return self.num_nodes * self.p_degree(k)

    def m_of_pair(self, k: int, k_prime: int) -> float:
        """``m^(k,k') = n^ k̄^ P^(k,k') / mu``: the raw target for the number
        of edges between degree classes ``k`` and ``k'``."""
        return (
            self.num_nodes
            * self.average_degree
            * self.p_joint(k, k_prime)
            / mu(k, k_prime)
        )

    def max_observed_degree(self) -> int:
        """Largest degree with ``P^(k) > 0`` (0 when no estimate exists)."""
        positive = [k for k, p in self.degree_distribution.items() if p > 0.0]
        return max(positive, default=0)


def estimate_local_properties(
    walk: SamplingList | WalkIndex, backend: str = "python"
) -> LocalEstimates:
    """Run all five estimators of Section III-E over one walk.

    ``backend`` is forwarded to the traversed-edges pair counting of the
    joint-degree estimator (the one estimator with an engine kernel).
    """
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    n_hat = estimate_num_nodes(index)
    k_hat = estimate_average_degree(index)
    return LocalEstimates(
        num_nodes=n_hat,
        average_degree=k_hat,
        degree_distribution=estimate_degree_distribution(index),
        joint_degree_distribution=estimate_joint_degree_distribution(
            index, n_hat=n_hat, k_hat=k_hat, backend=backend
        ),
        degree_clustering=estimate_degree_clustering(index),
        walk_length=index.r,
    )


def exact_local_properties(graph) -> LocalEstimates:
    """Ground-truth :class:`LocalEstimates` computed from a full graph.

    Used by tests (estimator convergence targets) and by the dK-series API,
    which generates graphs from exact local properties when the whole graph
    is available.
    """
    from repro.metrics.basic import degree_distribution as exact_pk
    from repro.metrics.basic import joint_degree_distribution as exact_pkk
    from repro.metrics.clustering import degree_dependent_clustering as exact_ck

    return LocalEstimates(
        num_nodes=float(graph.num_nodes),
        average_degree=graph.average_degree(),
        degree_distribution=exact_pk(graph),
        joint_degree_distribution=exact_pkk(graph),
        degree_clustering=exact_ck(graph),
        walk_length=0,
    )
