"""Degree-distribution estimator.

``P^(k) = Φ(k) / Φ̄`` with ``Φ(k) = (1/(k r)) sum_i 1{d(x_i) = k}``
(Gjoka et al. / Ribeiro–Towsley, Section III-E).  Each visit is
down-weighted by its node's degree to undo the walk's degree bias; the
resulting estimate sums to exactly 1 over the observed degrees.
"""

from __future__ import annotations

from collections import Counter

from repro.estimators.average_degree import mean_inverse_degree
from repro.estimators.walk_index import WalkIndex
from repro.sampling.walkers import SamplingList


def degree_visit_weights(walk: SamplingList | WalkIndex) -> dict[int, float]:
    """``Φ(k)`` for every degree observed in the walk."""
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    counts = Counter(index.degrees)
    r = index.r
    return {k: c / (k * r) for k, c in counts.items()}


def estimate_degree_distribution(
    walk: SamplingList | WalkIndex,
) -> dict[int, float]:
    """Estimate ``{P(k)}`` as a sparse ``degree -> probability`` mapping.

    Only degrees actually observed in the walk appear (a positive estimate
    certifies at least one such node exists in ``G``, which the target
    degree vector construction relies on).  The values sum to 1.
    """
    index = walk if isinstance(walk, WalkIndex) else WalkIndex(walk)
    phi_bar = mean_inverse_degree(index)
    return {k: phi / phi_bar for k, phi in degree_visit_weights(index).items()}
