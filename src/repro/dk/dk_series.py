"""Classic full-knowledge dK-series generators (0K / 1K / 2K / 2.5K).

These generate a random graph preserving the exact local statistics of a
*fully observed* graph — the setting of Mahadevan et al. and Orsini et al.
They double as reference implementations for the restoration pipeline
(which must reproduce them when handed exact estimates and an empty
subgraph) and as a user-facing API for null-model generation.
"""

from __future__ import annotations

import random

from repro.dk.construction import build_graph_from_targets
from repro.dk.rewiring import DEFAULT_REWIRING_COEFFICIENT, RewiringEngine
from repro.errors import RealizabilityError
from repro.graph.generators import configuration_model, gnm_random_graph
from repro.graph.multigraph import MultiGraph
from repro.metrics.basic import degree_vector, joint_degree_matrix
from repro.metrics.clustering import degree_dependent_clustering
from repro.utils.ints import near_int
from repro.utils.rng import ensure_rng


def generate_0k(
    graph: MultiGraph, rng: random.Random | int | None = None
) -> MultiGraph:
    """0K-graph: random simple graph with the same ``n`` and ``k̄``."""
    return gnm_random_graph(graph.num_nodes, graph.num_edges, rng=rng)


def generate_1k(
    graph: MultiGraph, rng: random.Random | int | None = None
) -> MultiGraph:
    """1K-graph: configuration-model graph with the same degree vector."""
    r = ensure_rng(rng)
    degrees: list[int] = []
    for k, count in sorted(degree_vector(graph).items()):
        degrees.extend([k] * count)
    isolated = graph.num_nodes - len(degrees)
    degrees.extend([0] * isolated)
    if sum(degrees) % 2 != 0:
        raise RealizabilityError("graph degree sum is odd (corrupt input graph)")
    return configuration_model(degrees, rng=r)


def generate_2k(
    graph: MultiGraph, rng: random.Random | int | None = None
) -> MultiGraph:
    """2K-graph: stub-matched graph with the same joint degree matrix."""
    dv = degree_vector(graph)
    jdm = joint_degree_matrix(graph)
    return build_graph_from_targets(dv, jdm, rng=rng)


def generate_25k(
    graph: MultiGraph,
    rc: float = DEFAULT_REWIRING_COEFFICIENT,
    rng: random.Random | int | None = None,
) -> MultiGraph:
    """2.5K-graph: 2K construction rewired toward the exact ``{c̄(k)}``.

    The returned graph preserves ``{n(k)}`` and ``{m(k,k')}`` exactly and
    approximates the degree-dependent clustering; ``rc`` controls the
    rewiring budget exactly as in the restoration pipeline.
    """
    r = ensure_rng(rng)
    generated = generate_2k(graph, rng=r)
    target = degree_dependent_clustering(graph)
    engine = RewiringEngine(generated, target, rng=r)
    engine.run(rc=rc)
    return generated


def scalar_targets_from(graph: MultiGraph) -> tuple[int, float, int]:
    """(n, k̄, m) of a graph with ``m`` recovered via ``near_int(n k̄ / 2)``.

    Convenience for callers that carry 0K statistics around as scalars.
    """
    n = graph.num_nodes
    kbar = graph.average_degree()
    return n, kbar, near_int(n * kbar / 2.0)
