"""Degree-preserving simplification of generated multigraphs.

Stub matching (Algorithm 5) may leave parallel edges and self-loops — legal
under the paper's graph model, but real social graphs are simple, and the
dK literature (Stanton–Pinar, Gjoka et al.) removes the defects with
degree-preserving double-edge swaps.  Two modes:

* ``strict_jdm=True`` (default): only *equal-degree* swaps (the Algorithm 6
  move), which preserve the entire joint degree matrix — a cleaned graph
  still realizes its 2K targets exactly.  Multi-edges concentrate between
  hubs whose degrees are rare, so some defects may be unswappable in this
  mode; the report carries the residual count.
* ``strict_jdm=False``: any double-edge swap (preserves every node's
  degree, i.e. the 1K targets, but may shift JDM cells).  Almost always
  reaches a fully simple graph.

A swap is applied only when it strictly reduces the number of defective
edge slots and creates no new defect, so the defect count is a decreasing
potential; rounds repeat until a full pass makes no progress.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.multigraph import MultiGraph, Node
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class CleanupReport:
    """Outcome of one simplification pass."""

    initial_defects: int
    remaining_defects: int
    swaps: int
    attempts: int

    @property
    def is_simple(self) -> bool:
        """True when every parallel edge and loop was eliminated."""
        return self.remaining_defects == 0


def count_defects(graph: MultiGraph) -> int:
    """Defective edge slots: loops plus excess parallel copies."""
    defects = 0
    seen: set[Node] = set()
    for u in graph.nodes():
        seen.add(u)
        for v, a in graph.adjacency_view(u).items():
            if v == u:
                defects += a // 2  # each loop is one defect
            elif v not in seen and a > 1:
                defects += a - 1
    return defects


def simplify_preserving_jdm(
    graph: MultiGraph,
    rng: random.Random | int | None = None,
    strict_jdm: bool = True,
    partner_samples: int = 200,
    protected_edges: set[tuple[Node, Node]] | None = None,
) -> CleanupReport:
    """Remove parallels/loops in place via double-edge swaps.

    For each defective copy ``(u, v)``, sample partner edges ``(a, b)`` and
    replace the pair with ``(u, b), (a, v)`` when the replacement creates
    no loop or parallel edge — and, in strict mode, when ``deg(a) ==
    deg(u)`` for one of the defect's orientations (the JDM-preserving
    condition).  See the module docstring for the two modes.

    ``protected_edges`` (canonical ``(min, max)`` pairs) are never consumed
    as swap partners — the restoration pipeline passes the sampled
    subgraph's edges here so simplification cannot disturb the observed
    structure (defective copies themselves are never subgraph edges: the
    subgraph is simple and its pairs keep one protected copy).
    """
    r = ensure_rng(rng)
    initial = count_defects(graph)
    if initial == 0:
        return CleanupReport(0, 0, 0, 0)

    protected = protected_edges or set()
    degrees = graph.degrees()
    swaps = 0
    attempts = 0
    while True:
        defects = _all_defects(graph)
        if not defects:
            break
        progressed = False
        for u, v in defects:
            if graph.multiplicity(u, v) < 2:
                continue  # fixed by an earlier swap of the same round
            done, tried = _fix_one(
                graph, u, v, degrees, r, strict_jdm, partner_samples, protected
            )
            attempts += tried
            if done:
                swaps += 1
                progressed = True
        if not progressed:
            break
    return CleanupReport(initial, count_defects(graph), swaps, attempts)


def _all_defects(graph: MultiGraph) -> list[tuple[Node, Node]]:
    """One entry per defective pair (loops as (u, u))."""
    out: list[tuple[Node, Node]] = []
    seen: set[Node] = set()
    for u in graph.nodes():
        seen.add(u)
        for v, a in graph.adjacency_view(u).items():
            if v == u and a >= 2:
                out.append((u, u))
            elif v not in seen and a > 1:
                out.append((u, v))
    return out


def _fix_one(
    graph: MultiGraph,
    u: Node,
    v: Node,
    degrees: dict[Node, int],
    rng: random.Random,
    strict_jdm: bool,
    partner_samples: int,
    protected: set[tuple[Node, Node]],
) -> tuple[bool, int]:
    """Try to swap one copy of defect ``(u, v)`` away; returns (done, tried)."""
    pool = list(graph.edges())
    tried = 0
    for _ in range(partner_samples):
        tried += 1
        a, b = pool[rng.randrange(len(pool))]
        key = (a, b) if _leq(a, b) else (b, a)
        if key in protected and graph.multiplicity(a, b) <= 1:
            continue  # the sole copy of a protected pair must survive
        if rng.random() < 0.5:
            a, b = b, a
        # try both defect orientations: pivot on u, then on v
        for x, y in ((u, v), (v, u)):
            if strict_jdm and degrees[a] != degrees[x]:
                if degrees[b] == degrees[x]:
                    a, b = b, a
                else:
                    continue
            if _swap_is_clean(graph, x, y, a, b):
                graph.remove_edge(x, y)
                graph.remove_edge(a, b)
                graph.add_edge(x, b)
                graph.add_edge(a, y)
                return True, tried
    return False, tried


def _swap_is_clean(
    graph: MultiGraph, u: Node, v: Node, a: Node, b: Node
) -> bool:
    """True when replacing (u,v),(a,b) with (u,b),(a,v) strictly reduces
    defects: the new edges are neither loops nor duplicates of surviving
    edges, and the partner is itself clean to consume."""
    if a == b:
        return False  # partner loop: swapping two defects cannot reduce count
    if (a, b) == (u, v) or (b, a) == (u, v):
        return False
    if u == b or a == v:
        return False  # would create a loop
    # survivors of (u,b) after removing one copy each of (u,v) and (a,b)
    mult_ub = graph.multiplicity(u, b)
    if v == b:
        mult_ub -= 1  # (u,v) is a copy of (u,b)
    if a == u:
        mult_ub -= 1  # (a,b) is a copy of (u,b)
    if mult_ub > 0:
        return False
    mult_av = graph.multiplicity(a, v)
    if u == a:
        mult_av -= 1  # (u,v) is a copy of (a,v)
    if b == v:
        mult_av -= 1  # (a,b) is a copy of (a,v)
    if mult_av > 0:
        return False
    return True


def _leq(a: Node, b: Node) -> bool:
    """Total order on node ids (ints in practice; repr fallback otherwise)."""
    if isinstance(a, int) and isinstance(b, int):
        return a <= b
    return repr(a) <= repr(b)
