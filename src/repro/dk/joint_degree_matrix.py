"""Joint degree matrices ``{m(k,k')}`` and their realizability conditions.

A JDM is stored sparsely and *symmetrically*: ``dict[(int, int), int]``
carrying both ``(k, k')`` and ``(k', k)`` with equal values (diagonal cells
once).  The paper's conditions against a target degree vector (Section
IV-C):

* (JDM-1) every ``m(k,k')`` is a non-negative integer,
* (JDM-2) symmetry,
* (JDM-3) ``sum_k' mu(k,k') m(k,k') = k n(k)`` for every class ``k``,

plus, for subgraph containment,

* (JDM-4) ``m(k,k') >= m'(k,k')`` for the subgraph's class-pair census.
"""

from __future__ import annotations

from repro.errors import RealizabilityError
from repro.estimators.local import mu

DegreePair = tuple[int, int]


def symmetrize(jdm: dict[DegreePair, int]) -> dict[DegreePair, int]:
    """Copy of ``jdm`` with the mirror cell of every entry filled in.

    When both ``(k, k')`` and ``(k', k)`` are present with different values
    a :class:`RealizabilityError` is raised (ambiguous input).
    """
    out: dict[DegreePair, int] = {}
    for (k, kp), v in jdm.items():
        mirror = (kp, k)
        if mirror in jdm and jdm[mirror] != v:
            raise RealizabilityError(
                f"asymmetric JDM input: m{ (k, kp) } = {v} but m{mirror} = {jdm[mirror]}"
            )
        out[(k, kp)] = v
        out[mirror] = v
    return out


def jdm_class_degree_sum(jdm: dict[DegreePair, int], k: int) -> int:
    """``s(k) = sum_k' mu(k,k') m(k,k')`` — the degree mass of class ``k``."""
    total = 0
    for (a, b), v in jdm.items():
        if a == k:
            total += mu(a, b) * v
    return total


def jdm_all_class_sums(jdm: dict[DegreePair, int]) -> dict[int, int]:
    """``{k: s(k)}`` over every class appearing in the JDM (one pass)."""
    sums: dict[int, int] = {}
    for (a, b), v in jdm.items():
        sums[a] = sums.get(a, 0) + mu(a, b) * v
    return sums


def jdm_total_edges(jdm: dict[DegreePair, int]) -> int:
    """Total edge count implied by a symmetric JDM.

    Off-diagonal cells appear twice (mirrored), diagonal once, so the total
    is ``sum_diag + sum_offdiag / 2``.
    """
    total2 = 0  # twice the edge count
    for (a, b), v in jdm.items():
        total2 += 2 * v if a == b else v
    if total2 % 2 != 0:
        raise RealizabilityError("JDM off-diagonal mass is asymmetric")
    return total2 // 2


def check_joint_degree_matrix(
    jdm: dict[DegreePair, int],
    dv: dict[int, int],
    subgraph_census: dict[DegreePair, int] | None = None,
) -> None:
    """Raise :class:`RealizabilityError` unless JDM-1..JDM-3 (and JDM-4 when
    a subgraph census is supplied) all hold against ``dv``."""
    for (k, kp), v in jdm.items():
        if not isinstance(v, int) or v < 0:
            raise RealizabilityError(
                f"(JDM-1) m({k},{kp}) must be a non-negative int, got {v!r}"
            )
        if jdm.get((kp, k)) != v:
            raise RealizabilityError(
                f"(JDM-2) m({k},{kp}) = {v} != m({kp},{k}) = {jdm.get((kp, k))!r}"
            )
    sums = jdm_all_class_sums(jdm)
    classes = set(sums) | set(dv)
    for k in classes:
        want = k * dv.get(k, 0)
        have = sums.get(k, 0)
        if want != have:
            raise RealizabilityError(
                f"(JDM-3) class {k}: sum mu*m = {have} but k*n(k) = {want}"
            )
    if subgraph_census is not None:
        for pair, need in subgraph_census.items():
            if jdm.get(pair, 0) < need:
                raise RealizabilityError(
                    f"(JDM-4) m{pair} = {jdm.get(pair, 0)} < subgraph census {need}"
                )
