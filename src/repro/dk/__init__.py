"""dK-series substrate (Mahadevan et al. / Gjoka et al. / Stanton–Pinar).

The dK-series fixes increasingly rich degree statistics of a target graph:
0K fixes ``n`` and ``k̄``, 1K the degree vector ``{n(k)}``, 2K the joint
degree matrix ``{m(k,k')}``, and 2.5K additionally steers the
degree-dependent clustering ``{c̄(k)}`` by edge rewiring.

This package provides the machinery shared by the paper's two generative
methods: realizability checks for degree vectors and JDMs, stub-matching
construction (from an empty graph *or* growing out of a sampled subgraph —
the paper's Algorithm 5), the clustering-targeting rewiring engine
(Algorithm 6), and the classic full-knowledge dK generators.
"""

from repro.dk.degree_vector import (
    degree_vector_total,
    degree_vector_degree_sum,
    check_degree_vector,
)
from repro.dk.joint_degree_matrix import (
    jdm_class_degree_sum,
    jdm_total_edges,
    check_joint_degree_matrix,
    symmetrize,
)
from repro.dk.cleanup import (
    CleanupReport,
    count_defects,
    simplify_preserving_jdm,
)
from repro.dk.construction import build_graph_from_targets
from repro.dk.rewiring import RewiringEngine, RewiringReport
from repro.dk.dk_series import (
    generate_0k,
    generate_1k,
    generate_2k,
    generate_25k,
)

__all__ = [
    "degree_vector_total",
    "degree_vector_degree_sum",
    "check_degree_vector",
    "jdm_class_degree_sum",
    "jdm_total_edges",
    "check_joint_degree_matrix",
    "symmetrize",
    "build_graph_from_targets",
    "RewiringEngine",
    "RewiringReport",
    "CleanupReport",
    "count_defects",
    "simplify_preserving_jdm",
    "generate_0k",
    "generate_1k",
    "generate_2k",
    "generate_25k",
]
