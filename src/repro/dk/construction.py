"""Stub-matching construction of a graph realizing target DV + JDM
(the paper's Algorithm 5, in its general subgraph-growing form).

Given a target degree vector ``{n*(k)}``, a target joint degree matrix
``{m*(k,k')}``, and optionally a sampled subgraph ``G'`` with an assigned
target degree per subgraph node, the builder:

1. starts from a copy of ``G'`` (or an empty graph),
2. adds ``sum_k n*(k) - |V'|`` fresh nodes and deals them the leftover
   degree sequence (each ``k`` appearing ``n*(k) - n'(k)`` times, shuffled),
3. attaches ``d*_i - d'_i`` half-edges to every node,
4. for every class pair ``(k, k')`` joins ``m*(k,k') - m'(k,k')`` uniformly
   random free half-edge pairs between the two classes.

The half-edge budgets balance exactly when DV-1..3 / JDM-1..4 hold (the
paper's realizability argument); any imbalance raises
:class:`ConstructionError` rather than being silently absorbed.

Stub matching can create parallel edges and self-loops — allowed by the
paper's graph model.  A bounded number of resampling retries per edge keeps
them rare without threatening termination.
"""

from __future__ import annotations

import random

from repro.errors import ConstructionError
from repro.graph.multigraph import MultiGraph, Node
from repro.sampling.subgraph import SampledSubgraph
from repro.utils.rng import ensure_rng

DegreePair = tuple[int, int]

# Retries per stub pairing to dodge loops / parallels before accepting one.
_COLLISION_RETRIES = 12


def build_graph_from_targets(
    dv: dict[int, int],
    jdm: dict[DegreePair, int],
    rng: random.Random | int | None = None,
    subgraph: SampledSubgraph | None = None,
    target_degrees: dict[Node, int] | None = None,
) -> MultiGraph:
    """Realize ``(dv, jdm)``, optionally growing out of ``subgraph``.

    Parameters
    ----------
    dv, jdm:
        Validated targets (see :mod:`repro.dk.degree_vector` /
        :mod:`repro.dk.joint_degree_matrix`).  ``jdm`` must be symmetric.
    rng:
        Randomness for degree dealing and stub pairing.
    subgraph:
        When given, the output contains every node and edge of
        ``subgraph.graph``; ``target_degrees`` must then assign a target
        degree ``d*_i >= d'_i`` to every subgraph node.
    """
    r = ensure_rng(rng)
    graph, assigned = _seed_graph(subgraph, target_degrees)
    census = _class_census(assigned)
    pair_census = _pair_census(graph, assigned) if subgraph is not None else {}

    total_target = sum(dv.values())
    n_existing = graph.num_nodes
    if total_target < n_existing:
        raise ConstructionError(
            f"target node count {total_target} below subgraph size {n_existing}"
        )

    # -- deal leftover degrees to fresh nodes ---------------------------
    leftover: list[int] = []
    for k, want in dv.items():
        have = census.get(k, 0)
        if want < have:
            raise ConstructionError(
                f"(DV-3 violated) n*({k}) = {want} < subgraph census {have}"
            )
        leftover.extend([k] * (want - have))
    if len(leftover) != total_target - n_existing:
        raise ConstructionError(
            "degree census mismatch: leftover degree deals "
            f"{len(leftover)} nodes but {total_target - n_existing} are needed"
        )
    r.shuffle(leftover)
    next_id = _fresh_id_start(graph)
    for offset, k in enumerate(leftover):
        node = next_id + offset
        graph.add_node(node)
        assigned[node] = k

    # -- attach free half-edges per class -------------------------------
    stubs: dict[int, list[Node]] = {}
    for node, k_target in assigned.items():
        existing = graph.degree(node) if subgraph is not None else 0
        free = k_target - existing
        if free < 0:
            raise ConstructionError(
                f"node {node!r}: target degree {k_target} below current {existing}"
            )
        if free:
            stubs.setdefault(k_target, []).extend([node] * free)
    for pool in stubs.values():
        r.shuffle(pool)

    # -- join class pairs ------------------------------------------------
    for (k, kp), want in sorted(jdm.items()):
        if kp < k:
            continue  # symmetric JDM: handle each unordered pair once
        need = want - pair_census.get((k, kp), 0)
        if need < 0:
            raise ConstructionError(
                f"(JDM-4 violated) m*({k},{kp}) = {want} below subgraph "
                f"census {pair_census[(k, kp)]}"
            )
        for _ in range(need):
            _join_one(graph, stubs, k, kp, r)

    dangling = {k: len(p) for k, p in stubs.items() if p}
    if dangling:
        raise ConstructionError(
            f"half-edges left unmatched after construction: {dangling} "
            "(DV/JDM were inconsistent)"
        )
    return graph


def _seed_graph(
    subgraph: SampledSubgraph | None, target_degrees: dict[Node, int] | None
) -> tuple[MultiGraph, dict[Node, int]]:
    """Copy of the seed graph plus the node -> target-degree assignment."""
    if subgraph is None:
        return MultiGraph(), {}
    if target_degrees is None:
        raise ConstructionError("target_degrees is required when growing a subgraph")
    graph = subgraph.graph.copy()
    assigned: dict[Node, int] = {}
    for node in graph.nodes():
        try:
            assigned[node] = target_degrees[node]
        except KeyError:
            raise ConstructionError(
                f"subgraph node {node!r} has no target degree"
            ) from None
    return graph, assigned


def _class_census(assigned: dict[Node, int]) -> dict[int, int]:
    """``n'(k)``: nodes per target-degree class in the seed graph."""
    census: dict[int, int] = {}
    for k in assigned.values():
        census[k] = census.get(k, 0) + 1
    return census


def _pair_census(graph: MultiGraph, assigned: dict[Node, int]) -> dict[DegreePair, int]:
    """``m'(k,k')``: seed edges per unordered target-class pair, stored with
    ``k <= k'`` keys (each edge once)."""
    census: dict[DegreePair, int] = {}
    for u, v in graph.edges():
        k, kp = assigned[u], assigned[v]
        key = (k, kp) if k <= kp else (kp, k)
        census[key] = census.get(key, 0) + 1
    return census


def _fresh_id_start(graph: MultiGraph) -> int:
    """Smallest integer safely above every existing integer node id."""
    top = -1
    for u in graph.nodes():
        if isinstance(u, int) and u > top:
            top = u
    return top + 1


def _join_one(
    graph: MultiGraph,
    stubs: dict[int, list[Node]],
    k: int,
    kp: int,
    rng: random.Random,
) -> None:
    """Connect one random free stub of class ``k`` to one of class ``kp``."""
    pool_a = stubs.get(k)
    pool_b = stubs.get(kp)
    if not pool_a or not pool_b or (k == kp and len(pool_a) < 2):
        raise ConstructionError(
            f"stub pools exhausted while joining classes ({k}, {kp})"
        )
    for attempt in range(_COLLISION_RETRIES + 1):
        if k == kp:
            ia, ib = rng.sample(range(len(pool_a)), 2)
        else:
            ia = rng.randrange(len(pool_a))
            ib = rng.randrange(len(pool_b))
        u, v = pool_a[ia], pool_b[ib]
        last_try = attempt == _COLLISION_RETRIES
        if not last_try and (u == v or graph.has_edge(u, v)):
            continue  # resample to dodge a loop / parallel edge
        _pop_index(pool_a, ia)
        if k == kp:
            # the same pool shrank; re-locate v's entry if it moved
            ib = ib if ib < len(pool_b) and pool_b[ib] == v else pool_b.index(v)
        _pop_index(pool_b, ib)
        graph.add_edge(u, v)
        return
    raise ConstructionError(f"could not join classes ({k}, {kp})")


def _pop_index(pool: list, idx: int) -> None:
    """O(1) unordered removal: swap with the last element and pop."""
    pool[idx] = pool[-1]
    pool.pop()
