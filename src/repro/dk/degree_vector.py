"""Degree vectors ``{n(k)}`` and their realizability conditions.

A degree vector is stored sparsely as ``dict[int, int]`` mapping degree to
node count (only ``k >= 1`` entries).  The paper's conditions for a vector
to be realizable by some multigraph (Section IV-B):

* (DV-1) every ``n(k)`` is a non-negative integer,
* (DV-2) ``sum_k k n(k)`` is even (handshake),

plus, when the generated graph must contain a sampled subgraph,

* (DV-3) ``n(k) >= n'(k)`` for the subgraph's target-degree census.
"""

from __future__ import annotations

from repro.errors import RealizabilityError


def degree_vector_total(dv: dict[int, int]) -> int:
    """Total number of nodes, ``sum_k n(k)``."""
    return sum(dv.values())


def degree_vector_degree_sum(dv: dict[int, int]) -> int:
    """Total degree, ``sum_k k n(k)`` (must be even for realizability)."""
    return sum(k * c for k, c in dv.items())


def check_degree_vector(
    dv: dict[int, int],
    subgraph_census: dict[int, int] | None = None,
) -> None:
    """Raise :class:`RealizabilityError` unless DV-1/DV-2 (and DV-3 when a
    subgraph census is supplied) all hold."""
    for k, c in dv.items():
        if not isinstance(k, int) or k < 1:
            raise RealizabilityError(f"degree classes must be ints >= 1, got {k!r}")
        if not isinstance(c, int) or c < 0:
            raise RealizabilityError(f"(DV-1) n({k}) must be a non-negative int, got {c!r}")
    if degree_vector_degree_sum(dv) % 2 != 0:
        raise RealizabilityError("(DV-2) sum of degrees is odd")
    if subgraph_census is not None:
        for k, need in subgraph_census.items():
            if dv.get(k, 0) < need:
                raise RealizabilityError(
                    f"(DV-3) n({k}) = {dv.get(k, 0)} < subgraph census {need}"
                )
