"""Clustering-targeting edge rewiring (the paper's Algorithm 6).

Repeatedly propose a double-edge swap between two candidate edges whose
chosen endpoints have equal degree — ``(x, y), (a, b) -> (x, b), (a, y)``
with ``deg(x) == deg(a)`` — and accept it iff the normalized L1 distance
between the graph's degree-dependent clustering ``{c̄(k)}`` and the target
``{c̄^(k)}`` strictly decreases.  Equal-degree swaps preserve every node's
degree and the joint degree matrix, so the 2K targets realized by the
construction phase survive rewiring untouched.

Two engine features implement the proposed method's innovations over the
Gjoka et al. procedure:

* a *protected* edge set (the sampled subgraph's edges) excluded from the
  candidate pool, so rewiring can never disturb the observed structure, and
* incremental triangle bookkeeping — per-node triangle counts and per-class
  sums are updated in O(k̄) per proposal instead of recounting, which is
  what makes ``R = RC x |candidates|`` attempts tractable.

The number of attempts is ``R = rc x |candidate edges|`` with ``rc = 500``
in the paper (configurable; the benchmark harness documents its smaller
values in EXPERIMENTS.md).

Backends
--------
:class:`RewiringEngine` runs on one of two interchangeable cores selected
by ``backend``:

* ``"python"`` — the reference dict-based core in this module: one
  proposal at a time, scored with the sequential-overlay triangle deltas.
* ``"csr"`` — :class:`repro.engine.rewiring_kernels.CSRRewiringCore`:
  proposals screened in vectorized numpy windows over an array adjacency,
  with every potential accept confirmed by the same scalar scorer, so
  accepted swaps, reports, and the resulting graph match the reference
  for a fixed seed.
* ``"auto"`` — ``csr`` above the calibrated per-kernel edge threshold
  (see :mod:`repro.engine.dispatch`), ``python`` otherwise.

Both cores draw proposals from the shared
:class:`~repro.engine.rewiring_kernels.ProposalStream` (blocked draws from
one numpy generator bridged off ``rng``), which is what makes the two
backends' proposal streams bit-compatible with each other.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.dispatch import resolve_backend
from repro.engine.rewiring_kernels import (
    CSRRewiringCore,
    ProposalStream,
    initial_candidates,
    normalized_l1_distance,
    proposal_triangle_deltas,
)
from repro.graph.multigraph import MultiGraph, Node
from repro.metrics.clustering import triangles_per_node
from repro.utils.rng import ensure_rng

Edge = tuple[Node, Node]

DEFAULT_REWIRING_COEFFICIENT = 500  # RC in the paper (Section V-E, Ref. [26])


@dataclass(frozen=True)
class RewiringReport:
    """Outcome of one rewiring run."""

    attempts: int
    accepted: int
    initial_distance: float
    final_distance: float
    num_candidates: int


class RewiringEngine:
    """Stateful rewiring over a graph with fixed degrees.

    Parameters
    ----------
    graph:
        Graph to rewire in place (degrees never change).
    target_clustering:
        ``{c̄^(k)}`` to approach (sparse; missing degrees mean target 0).
    protected_edges:
        Canonical ``(min, max)`` pairs never to be removed (the sampled
        subgraph's edge set in the proposed method; empty for Gjoka et
        al.).  One candidate copy per parallel multiplicity beyond the
        protected copy remains rewireable.
    forbid_loops / forbid_parallel:
        Reject proposals that would create self-loops / parallel edges.
        The paper's model permits both; rejecting them (default) matches
        the reference implementation and keeps generated graphs close to
        simple.
    backend:
        ``"auto"`` (default), ``"python"``, or ``"csr"`` — see the module
        docstring.  Resolved once at construction against the graph's
        edge count.
    record_trace:
        When true, every accepted swap is appended to :attr:`trace` as an
        ``(x, y, a, b)`` tuple — the backend equivalence tests compare
        these traces across backends.
    """

    def __init__(
        self,
        graph: MultiGraph,
        target_clustering: dict[int, float],
        protected_edges: set[Edge] | None = None,
        forbid_loops: bool = True,
        forbid_parallel: bool = True,
        rng: random.Random | int | None = None,
        backend: str = "auto",
        record_trace: bool = False,
    ) -> None:
        self.graph = graph
        self.backend = resolve_backend(
            backend, size=graph.num_edges, kernel="rewiring"
        )
        self.trace: list[tuple[Node, Node, Node, Node]] | None = (
            [] if record_trace else None
        )
        if self.backend == "csr":
            self._core = CSRRewiringCore(
                graph,
                target_clustering,
                protected_edges=protected_edges,
                forbid_loops=forbid_loops,
                forbid_parallel=forbid_parallel,
                rng=rng,
                trace=self.trace,
            )
        else:
            self._core = _PythonRewiringCore(
                graph,
                target_clustering,
                protected_edges=protected_edges,
                forbid_loops=forbid_loops,
                forbid_parallel=forbid_parallel,
                rng=rng,
                trace=self.trace,
            )

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def distance(self) -> float:
        """Current normalized L1 distance to the target clustering."""
        return self._core.distance

    @property
    def num_candidates(self) -> int:
        """Number of rewireable edges."""
        return self._core.num_candidates

    def run(
        self,
        rc: float = DEFAULT_REWIRING_COEFFICIENT,
        max_attempts: int | None = None,
        patience: int | None = None,
    ) -> RewiringReport:
        """Perform ``R = rc x |candidates|`` rewiring attempts.

        ``max_attempts`` caps ``R`` when set.  ``patience`` enables early
        stopping: when that many consecutive proposals are rejected, the
        hill climb has effectively converged and the loop exits (a
        practical speedup toward the paper's "scalable restoration" future
        work; disabled by default for protocol fidelity).  Returns a
        report; the graph is modified in place.
        """
        return self._core.run(rc, max_attempts, patience)

    def clustering_by_degree(self) -> dict[int, float]:
        """Current ``{c̄(k)}`` of the graph from the incremental state."""
        return self._core.clustering_by_degree()


class _PythonRewiringCore:
    """The reference dict-based core (one proposal at a time)."""

    def __init__(
        self,
        graph: MultiGraph,
        target_clustering: dict[int, float],
        protected_edges: set[Edge] | None,
        forbid_loops: bool,
        forbid_parallel: bool,
        rng: random.Random | int | None,
        trace: list | None,
    ) -> None:
        self.graph = graph
        self.target = dict(target_clustering)
        self.forbid_loops = forbid_loops
        self.forbid_parallel = forbid_parallel
        self._rng = ensure_rng(rng)
        self._trace = trace

        self._degree: dict[Node, int] = graph.degrees()
        self._class_size: dict[int, int] = {}
        for k in self._degree.values():
            self._class_size[k] = self._class_size.get(k, 0) + 1

        # only the per-class triangle sums are tracked incrementally; the
        # per-node counts are folded in once here and never needed again
        self._class_tri: dict[int, float] = {}
        for node, t in triangles_per_node(graph).items():
            k = self._degree[node]
            self._class_tri[k] = self._class_tri.get(k, 0.0) + t

        self._norm = sum(self.target.values())
        self._candidates: list[Edge] = initial_candidates(
            graph, protected_edges or set()
        )
        self._distance = normalized_l1_distance(
            self.clustering_by_degree(), self.target, self._norm
        )
        self._stream = ProposalStream(self._rng, len(self._candidates))

    @property
    def distance(self) -> float:
        return self._distance

    @property
    def num_candidates(self) -> int:
        return len(self._candidates)

    def run(
        self, rc: float, max_attempts: int | None, patience: int | None
    ) -> RewiringReport:
        n_cand = len(self._candidates)
        attempts = int(rc * n_cand)
        if max_attempts is not None:
            attempts = min(attempts, max_attempts)
        initial = self._distance
        accepted = 0
        performed = 0
        stagnant = 0
        if n_cand >= 2 and self._norm > 0.0:
            for _ in range(attempts):
                performed += 1
                if self._attempt():
                    accepted += 1
                    stagnant = 0
                else:
                    stagnant += 1
                    if patience is not None and stagnant >= patience:
                        break
        return RewiringReport(
            attempts=performed if patience is not None else attempts,
            accepted=accepted,
            initial_distance=initial,
            final_distance=self._distance,
            num_candidates=n_cand,
        )

    def clustering_by_degree(self) -> dict[int, float]:
        out: dict[int, float] = {}
        for k, size in self._class_size.items():
            if k < 2:
                out[k] = 0.0
            else:
                out[k] = 2.0 * self._class_tri.get(k, 0.0) / (size * k * (k - 1))
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _attempt(self) -> int:
        """One proposal; returns 1 when accepted."""
        i1, c1, i2, c2 = self._stream.next()
        cands = self._candidates
        e1 = cands[i1]
        # orient e1: the chosen side's degree must be matched by e2's side
        if c1 < 0.5:
            x, y = e1
        else:
            y, x = e1
        kx = self._degree[x]

        if i2 == i1:
            return 0
        a, b = cands[i2]
        if self._degree[a] == kx and self._degree[b] == kx:
            if c2 < 0.5:
                a, b = b, a
        elif self._degree[b] == kx:
            a, b = b, a
        elif self._degree[a] != kx:
            return 0  # no endpoint of e2 matches deg(x): not a valid swap

        # proposal: remove (x, y), (a, b); add (x, b), (a, y)
        if x == a:
            return 0  # identity swap
        if self.forbid_loops and (x == b or a == y):
            return 0
        if self.forbid_parallel and (
            self.graph.multiplicity(x, b) > 0 or self.graph.multiplicity(a, y) > 0
        ):
            # adding (x,b) when (x,b) already exists would create a parallel
            # edge; the check is conservative for the x==b/a==y loop cases,
            # which the loop guard above already rejected
            return 0

        delta_tri = proposal_triangle_deltas(self.graph, x, y, a, b)
        new_distance = self._distance_after(delta_tri)
        if new_distance >= self._distance:
            return 0

        # accept: mutate the graph, the bookkeeping, and the candidate list
        self.graph.remove_edge(x, y)
        self.graph.remove_edge(a, b)
        self.graph.add_edge(x, b)
        self.graph.add_edge(a, y)
        for node, dt in delta_tri.items():
            if dt:
                k = self._degree[node]
                self._class_tri[k] = self._class_tri.get(k, 0.0) + dt
        self._distance = new_distance
        cands[i1] = (x, b)
        cands[i2] = (a, y)
        if self._trace is not None:
            self._trace.append((x, y, a, b))
        return 1

    def _distance_after(self, delta_tri: dict[Node, float]) -> float:
        """Distance if ``delta_tri`` were applied (only affected classes
        re-evaluated)."""
        class_delta: dict[int, float] = {}
        for node, dt in delta_tri.items():
            if dt:
                k = self._degree[node]
                class_delta[k] = class_delta.get(k, 0.0) + dt
        if not class_delta:
            return self._distance
        # ascending-class iteration: a canonical summation order that the
        # CSR backend reproduces exactly from its per-class delta rows
        dist = self._distance * self._norm
        for k in sorted(class_delta):
            dS = class_delta[k]
            size = self._class_size[k]
            if k < 2:
                continue
            denom = size * k * (k - 1)
            old_c = 2.0 * self._class_tri.get(k, 0.0) / denom
            new_c = 2.0 * (self._class_tri.get(k, 0.0) + dS) / denom
            tgt = self.target.get(k, 0.0)
            dist += abs(new_c - tgt) - abs(old_c - tgt)
        return dist / self._norm
