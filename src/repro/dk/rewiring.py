"""Clustering-targeting edge rewiring (the paper's Algorithm 6).

Repeatedly propose a double-edge swap between two candidate edges whose
chosen endpoints have equal degree — ``(x, y), (a, b) -> (x, b), (a, y)``
with ``deg(x) == deg(a)`` — and accept it iff the normalized L1 distance
between the graph's degree-dependent clustering ``{c̄(k)}`` and the target
``{c̄^(k)}`` strictly decreases.  Equal-degree swaps preserve every node's
degree and the joint degree matrix, so the 2K targets realized by the
construction phase survive rewiring untouched.

Two engine features implement the proposed method's innovations over the
Gjoka et al. procedure:

* a *protected* edge set (the sampled subgraph's edges) excluded from the
  candidate pool, so rewiring can never disturb the observed structure, and
* incremental triangle bookkeeping — per-node triangle counts and per-class
  sums are updated in O(k̄) per proposal instead of recounting, which is
  what makes ``R = RC x |candidates|`` attempts tractable.

The number of attempts is ``R = rc x |candidate edges|`` with ``rc = 500``
in the paper (configurable; the benchmark harness documents its smaller
values in EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.multigraph import MultiGraph, Node
from repro.metrics.clustering import triangles_per_node
from repro.utils.rng import ensure_rng

Edge = tuple[Node, Node]

DEFAULT_REWIRING_COEFFICIENT = 500  # RC in the paper (Section V-E, Ref. [26])


@dataclass(frozen=True)
class RewiringReport:
    """Outcome of one rewiring run."""

    attempts: int
    accepted: int
    initial_distance: float
    final_distance: float
    num_candidates: int


class RewiringEngine:
    """Stateful rewiring over a graph with fixed degrees.

    Parameters
    ----------
    graph:
        Graph to rewire in place (degrees never change).
    target_clustering:
        ``{c̄^(k)}`` to approach (sparse; missing degrees mean target 0).
    protected_edges:
        Canonical ``(min, max)`` pairs never to be removed (the sampled
        subgraph's edge set in the proposed method; empty for Gjoka et
        al.).  One candidate copy per parallel multiplicity beyond the
        protected copy remains rewireable.
    forbid_loops / forbid_parallel:
        Reject proposals that would create self-loops / parallel edges.
        The paper's model permits both; rejecting them (default) matches
        the reference implementation and keeps generated graphs close to
        simple.
    """

    def __init__(
        self,
        graph: MultiGraph,
        target_clustering: dict[int, float],
        protected_edges: set[Edge] | None = None,
        forbid_loops: bool = True,
        forbid_parallel: bool = True,
        rng: random.Random | int | None = None,
    ) -> None:
        self.graph = graph
        self.target = dict(target_clustering)
        self.forbid_loops = forbid_loops
        self.forbid_parallel = forbid_parallel
        self._rng = ensure_rng(rng)

        self._degree: dict[Node, int] = graph.degrees()
        self._class_size: dict[int, int] = {}
        for k in self._degree.values():
            self._class_size[k] = self._class_size.get(k, 0) + 1

        self._tri: dict[Node, float] = triangles_per_node(graph)
        self._class_tri: dict[int, float] = {}
        for node, t in self._tri.items():
            k = self._degree[node]
            self._class_tri[k] = self._class_tri.get(k, 0.0) + t

        self._norm = sum(self.target.values())
        self._candidates: list[Edge] = self._initial_candidates(protected_edges or set())
        self._distance = self._full_distance()

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def distance(self) -> float:
        """Current normalized L1 distance to the target clustering."""
        return self._distance

    @property
    def num_candidates(self) -> int:
        """Number of rewireable edges."""
        return len(self._candidates)

    def run(
        self,
        rc: float = DEFAULT_REWIRING_COEFFICIENT,
        max_attempts: int | None = None,
        patience: int | None = None,
    ) -> RewiringReport:
        """Perform ``R = rc x |candidates|`` rewiring attempts.

        ``max_attempts`` caps ``R`` when set.  ``patience`` enables early
        stopping: when that many consecutive proposals are rejected, the
        hill climb has effectively converged and the loop exits (a
        practical speedup toward the paper's "scalable restoration" future
        work; disabled by default for protocol fidelity).  Returns a
        report; the graph is modified in place.
        """
        n_cand = len(self._candidates)
        attempts = int(rc * n_cand)
        if max_attempts is not None:
            attempts = min(attempts, max_attempts)
        initial = self._distance
        accepted = 0
        performed = 0
        stagnant = 0
        if n_cand >= 2 and self._norm > 0.0:
            for _ in range(attempts):
                performed += 1
                if self._attempt():
                    accepted += 1
                    stagnant = 0
                else:
                    stagnant += 1
                    if patience is not None and stagnant >= patience:
                        break
        return RewiringReport(
            attempts=performed if patience is not None else attempts,
            accepted=accepted,
            initial_distance=initial,
            final_distance=self._distance,
            num_candidates=n_cand,
        )

    def clustering_by_degree(self) -> dict[int, float]:
        """Current ``{c̄(k)}`` of the graph from the incremental state."""
        out: dict[int, float] = {}
        for k, size in self._class_size.items():
            if k < 2:
                out[k] = 0.0
            else:
                out[k] = 2.0 * self._class_tri.get(k, 0.0) / (size * k * (k - 1))
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _initial_candidates(self, protected: set[Edge]) -> list[Edge]:
        """Every edge copy except one protected copy per protected pair."""
        remaining = dict.fromkeys(protected, 1)
        out: list[Edge] = []
        for u, v in self.graph.edges():
            key = (u, v) if _leq(u, v) else (v, u)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                continue
            out.append((u, v))
        return out

    def _full_distance(self) -> float:
        """Normalized L1 distance computed from scratch (init / audits)."""
        if self._norm <= 0.0:
            return 0.0
        current = self.clustering_by_degree()
        keys = set(current) | set(self.target)
        return sum(
            abs(current.get(k, 0.0) - self.target.get(k, 0.0)) for k in keys
        ) / self._norm

    def _attempt(self) -> int:
        """One proposal; returns 1 when accepted."""
        rng = self._rng
        cands = self._candidates
        i1 = rng.randrange(len(cands))
        e1 = cands[i1]
        # orient e1: the chosen side's degree must be matched by e2's side
        if rng.random() < 0.5:
            x, y = e1
        else:
            y, x = e1
        kx = self._degree[x]

        i2 = rng.randrange(len(cands))
        if i2 == i1:
            return 0
        e2 = cands[i2]
        a, b = e2
        if self._degree[a] == kx and self._degree[b] == kx:
            if rng.random() < 0.5:
                a, b = b, a
        elif self._degree[b] == kx:
            a, b = b, a
        elif self._degree[a] != kx:
            return 0  # no endpoint of e2 matches deg(x): not a valid swap

        # proposal: remove (x, y), (a, b); add (x, b), (a, y)
        if x == a:
            return 0  # identity swap
        if self.forbid_loops and (x == b or a == y):
            return 0
        if self.forbid_parallel and (
            self.graph.multiplicity(x, b) > 0 or self.graph.multiplicity(a, y) > 0
        ):
            # adding (x,b) when (x,b) already exists would create a parallel
            # edge; the check is conservative for the x==b/a==y loop cases,
            # which the loop guard above already rejected
            return 0

        delta_tri = self._proposal_triangle_deltas(x, y, a, b)
        new_distance = self._distance_after(delta_tri)
        if new_distance >= self._distance:
            return 0

        # accept: mutate the graph, the bookkeeping, and the candidate list
        self.graph.remove_edge(x, y)
        self.graph.remove_edge(a, b)
        self.graph.add_edge(x, b)
        self.graph.add_edge(a, y)
        for node, dt in delta_tri.items():
            if dt:
                self._tri[node] = self._tri.get(node, 0.0) + dt
                k = self._degree[node]
                self._class_tri[k] = self._class_tri.get(k, 0.0) + dt
        self._distance = new_distance
        cands[i1] = (x, b)
        cands[i2] = (a, y)
        return 1

    def _proposal_triangle_deltas(
        self, x: Node, y: Node, a: Node, b: Node
    ) -> dict[Node, float]:
        """Per-node triangle deltas of the swap, via a sequential overlay.

        Edges are removed/added one at a time against the *current* overlaid
        adjacency, which handles every multiplicity corner case (shared
        endpoints, adjacent edge pairs) without recounting.
        """
        overlay: dict[Edge, int] = {}
        delta: dict[Node, float] = {}
        self._apply_edge_delta(x, y, -1, overlay, delta)
        self._apply_edge_delta(a, b, -1, overlay, delta)
        self._apply_edge_delta(x, b, +1, overlay, delta)
        self._apply_edge_delta(a, y, +1, overlay, delta)
        return delta

    def _apply_edge_delta(
        self,
        u: Node,
        v: Node,
        sign: int,
        overlay: dict[Edge, int],
        delta: dict[Node, float],
    ) -> None:
        """Fold one edge insertion/removal into ``overlay`` and ``delta``.

        Removing (adding) one copy of ``(u, v)`` destroys (creates)
        ``sum_w A'_uw A'_vw`` triangles, where ``A'`` is the overlaid
        adjacency *before* this operation (for removal the edge itself is
        still present, which is correct: the triangles it closes are
        counted through its other two sides).
        """
        if u == v:
            # loops close no triangles under the paper's t_i definition
            overlay[(u, u)] = overlay.get((u, u), 0) + 2 * sign
            return
        graph = self.graph
        adj_u = graph.adjacency_view(u)
        adj_v = graph.adjacency_view(v)
        # iterate over the smaller neighborhood, plus overlay-only neighbors
        if len(adj_u) > len(adj_v):
            u, v = v, u
            adj_u, adj_v = adj_v, adj_u
        common = 0.0
        for w, mult_uw in adj_u.items():
            if w == u or w == v:
                continue
            a_uw = mult_uw + _overlay_get(overlay, u, w)
            if a_uw <= 0:
                continue
            a_vw = adj_v.get(w, 0) + _overlay_get(overlay, v, w)
            if a_vw <= 0:
                continue
            contrib = a_uw * a_vw
            common += contrib
            delta[w] = delta.get(w, 0.0) + sign * contrib
        # overlay may add neighbors of u that the graph does not know yet
        for (p, q), dm in overlay.items():
            if dm <= 0:
                continue
            w = None
            if p == u and q not in adj_u:
                w = q
            elif q == u and p not in adj_u:
                w = p
            if w is None or w in (u, v):
                continue
            a_vw = adj_v.get(w, 0) + _overlay_get(overlay, v, w)
            if a_vw <= 0:
                continue
            contrib = dm * a_vw
            common += contrib
            delta[w] = delta.get(w, 0.0) + sign * contrib
        delta[u] = delta.get(u, 0.0) + sign * common
        delta[v] = delta.get(v, 0.0) + sign * common
        key = (u, v) if _leq(u, v) else (v, u)
        overlay[key] = overlay.get(key, 0) + sign

    def _distance_after(self, delta_tri: dict[Node, float]) -> float:
        """Distance if ``delta_tri`` were applied (only affected classes
        re-evaluated)."""
        class_delta: dict[int, float] = {}
        for node, dt in delta_tri.items():
            if dt:
                k = self._degree[node]
                class_delta[k] = class_delta.get(k, 0.0) + dt
        if not class_delta:
            return self._distance
        dist = self._distance * self._norm
        for k, dS in class_delta.items():
            size = self._class_size[k]
            if k < 2:
                continue
            denom = size * k * (k - 1)
            old_c = 2.0 * self._class_tri.get(k, 0.0) / denom
            new_c = 2.0 * (self._class_tri.get(k, 0.0) + dS) / denom
            tgt = self.target.get(k, 0.0)
            dist += abs(new_c - tgt) - abs(old_c - tgt)
        return dist / self._norm


def _overlay_get(overlay: dict[Edge, int], p: Node, q: Node) -> int:
    key = (p, q) if _leq(p, q) else (q, p)
    return overlay.get(key, 0)


def _leq(a: Node, b: Node) -> bool:
    """Total order on node ids (ints in practice; repr fallback otherwise)."""
    if isinstance(a, int) and isinstance(b, int):
        return a <= b
    return repr(a) <= repr(b)
