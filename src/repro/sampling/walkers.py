"""Random-walk samplers producing the paper's sampling list ``L``.

A walk of length ``r`` yields ``L = ((x_i, N(x_i)))_{i=1..r}``: the ordered
sequence of visited nodes (with repeats — the Markov chain revisits) plus
each visited node's incident edge list.  The re-weighted estimators consume
this object directly.

Besides the simple random walk the paper builds on, two of the "improved
walks" its Related Work section points at are provided (non-backtracking
and Metropolis–Hastings), so the restoration pipeline can be driven by any
of the three.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import BudgetExhaustedError, CrawlFaultError, SamplingError
from repro.graph.multigraph import Node
from repro.sampling.access import GraphAccess
from repro.utils.rng import ensure_rng


@dataclass
class SamplingList:
    """Ordered record of a walk: nodes visited and their adjacency lists.

    Attributes
    ----------
    nodes:
        ``x_1 .. x_r`` in visit order, repeats included.
    neighbors:
        ``node -> N(node)`` for every distinct visited node; each entry of
        ``N(node)`` is the other endpoint of one incident edge (a neighbor
        adjacent through two parallel edges appears twice).
    """

    nodes: list[Node] = field(default_factory=list)
    neighbors: dict[Node, list[Node]] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Walk length ``r`` (number of samples, repeats included)."""
        return len(self.nodes)

    @property
    def distinct_nodes(self) -> set[Node]:
        """Set of distinct visited (= queried) nodes."""
        return set(self.neighbors)

    def degree(self, node: Node) -> int:
        """Degree of a visited node (length of its recorded edge list)."""
        try:
            return len(self.neighbors[node])
        except KeyError:
            raise SamplingError(f"{node!r} was not visited by this walk") from None

    def degree_sequence(self) -> list[int]:
        """``d(x_1) .. d(x_r)`` aligned with :attr:`nodes`."""
        return [len(self.neighbors[x]) for x in self.nodes]

    def record(self, node: Node, nbrs: list[Node]) -> None:
        """Append a visit of ``node`` whose adjacency is ``nbrs``."""
        self.nodes.append(node)
        if node not in self.neighbors:
            self.neighbors[node] = nbrs


def random_walk(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    rng: random.Random | int | None = None,
    max_steps: int | None = None,
) -> SamplingList:
    """Simple random walk until ``target_queried`` distinct nodes are queried.

    At each step an incident edge of the current node is chosen uniformly at
    random and traversed (Section III-B).  The walk length ``r`` therefore
    exceeds ``target_queried`` in general — the stopping rule matches the
    paper's experimental design ("continue each sampling procedure until the
    percentage of queried nodes reaches a given value").

    Parameters
    ----------
    access:
        Neighbor-query facade over the hidden graph.
    target_queried:
        Distinct-node budget at which the walk stops.
    seed:
        Starting node; drawn uniformly at random when ``None``.
    rng:
        Seedable randomness (see :func:`repro.utils.ensure_rng`).
    max_steps:
        Safety valve for poorly connected graphs; default ``1000 x target``.

    Under an imperfect-crawler regime (an access with a non-null
    :class:`~repro.sampling.faults.FaultPolicy`) the walk degrades
    gracefully instead of raising: a step onto a faulted node (churned,
    or transient retries exhausted) teleports the walker back to a
    uniformly random position of its own trace — or to a fresh uniform
    seed while the trace is still empty, which is how a walk whose seed
    node immediately churns re-seeds deterministically — and budget
    exhaustion (which under faults counts charged API calls) returns the
    partial walk.  All recovery draws come from the walk's own
    generator, so a faulty walk is a pure function of ``(seed, policy)``.
    """
    r = ensure_rng(rng)
    cap = max_steps if max_steps is not None else 1000 * max(target_queried, 1)
    current = seed if seed is not None else access.random_seed(r)
    policy = access.fault_policy
    lenient = policy is not None and not policy.is_null
    walk = SamplingList()
    for _ in range(cap):
        try:
            nbrs = access.query(current)
        except CrawlFaultError:
            current = r.choice(walk.nodes) if walk.nodes else access.random_seed(r)
            continue
        except BudgetExhaustedError:
            if lenient and walk.nodes:
                return walk
            raise
        if not nbrs:
            raise SamplingError(f"walk stuck: node {current!r} has no edges")
        walk.record(current, nbrs)
        if access.num_queried >= target_queried:
            return walk
        current = r.choice(nbrs)
    if lenient and walk.nodes:
        return walk
    raise SamplingError(
        f"random walk did not reach {target_queried} distinct nodes "
        f"within {cap} steps (graph too small or disconnected?)"
    )


def non_backtracking_random_walk(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    rng: random.Random | int | None = None,
    max_steps: int | None = None,
) -> SamplingList:
    """Non-backtracking random walk (Lee et al.): never immediately re-cross
    the edge just traversed, unless the current node has degree 1.

    Improves query efficiency over the simple walk while keeping the sample
    sequence Markovian on directed edges; the estimators remain applicable
    in practice (the paper cites this as a combinable improvement).
    """
    r = ensure_rng(rng)
    cap = max_steps if max_steps is not None else 1000 * max(target_queried, 1)
    current = seed if seed is not None else access.random_seed(r)
    previous: Node | None = None
    walk = SamplingList()
    for _ in range(cap):
        nbrs = access.query(current)
        if not nbrs:
            raise SamplingError(f"walk stuck: node {current!r} has no edges")
        walk.record(current, nbrs)
        if access.num_queried >= target_queried:
            return walk
        if previous is not None and len(nbrs) > 1:
            choices = [v for v in nbrs if v != previous]
            if not choices:  # all parallel edges lead back; must backtrack
                choices = nbrs
            nxt = r.choice(choices)
        else:
            nxt = r.choice(nbrs)
        previous = current
        current = nxt
    raise SamplingError(
        f"non-backtracking walk did not reach {target_queried} distinct "
        f"nodes within {cap} steps"
    )


def metropolis_hastings_random_walk(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    rng: random.Random | int | None = None,
    max_steps: int | None = None,
) -> SamplingList:
    """Metropolis–Hastings random walk targeting the uniform distribution.

    Proposes a uniform incident edge and accepts with ``min(1, d_u / d_v)``;
    rejections re-sample the current node.  Produces uniform node samples
    without re-weighting (useful as a cross-check of the re-weighted
    estimators in tests and examples).
    """
    r = ensure_rng(rng)
    cap = max_steps if max_steps is not None else 5000 * max(target_queried, 1)
    current = seed if seed is not None else access.random_seed(r)
    walk = SamplingList()
    for _ in range(cap):
        nbrs = access.query(current)
        if not nbrs:
            raise SamplingError(f"walk stuck: node {current!r} has no edges")
        walk.record(current, nbrs)
        if access.num_queried >= target_queried:
            return walk
        proposal = r.choice(nbrs)
        d_u = len(nbrs)
        d_v = len(access.query(proposal))
        if access.num_queried >= target_queried:
            walk.record(proposal, access.query(proposal))
            return walk
        if d_v <= d_u or r.random() < d_u / d_v:
            current = proposal
        # else: stay at current (it will be re-recorded next iteration)
    raise SamplingError(
        f"MH walk did not reach {target_queried} distinct nodes within {cap} steps"
    )
