"""Frontier sampling (multidimensional random walk, Ribeiro & Towsley).

The paper's Related Work cites frontier sampling [13] as an improved walk
that tolerates disconnected components: ``m`` coupled walkers hold a
frontier of positions; at each step one walker is chosen with probability
proportional to its current node's degree and moved across a uniform
incident edge.  In the limit the *edge* sequence is stationary-uniform
exactly like the simple walk's, so the re-weighted estimators apply to the
recorded node sequence unchanged, while the multiple dimensions decorrelate
samples faster and cover disconnected graphs (each component retains at
least the walkers seeded in it).
"""

from __future__ import annotations

import random

from repro.errors import SamplingError
from repro.graph.multigraph import Node
from repro.sampling.access import GraphAccess
from repro.sampling.walkers import SamplingList
from repro.utils.rng import ensure_rng

DEFAULT_DIMENSION = 8  # walker count used by Ribeiro & Towsley's evaluation


def frontier_sampling(
    access: GraphAccess,
    target_queried: int,
    dimension: int = DEFAULT_DIMENSION,
    seeds: list[Node] | None = None,
    rng: random.Random | int | None = None,
    max_steps: int | None = None,
) -> SamplingList:
    """Frontier-sample until ``target_queried`` distinct nodes are queried.

    Parameters
    ----------
    access:
        Neighbor-query facade over the hidden graph.
    target_queried:
        Distinct-node budget at which sampling stops.
    dimension:
        Number of coupled walkers ``m`` (1 recovers the simple walk up to
        bookkeeping).
    seeds:
        Optional explicit walker seeds (padded with uniform draws when
        shorter than ``dimension``).
    rng, max_steps:
        As in :func:`repro.sampling.walkers.random_walk`.

    Returns the usual :class:`SamplingList` of moved-walker positions, in
    move order — the format every estimator consumes.
    """
    if dimension < 1:
        raise SamplingError(f"dimension must be >= 1, got {dimension}")
    r = ensure_rng(rng)
    cap = max_steps if max_steps is not None else 1000 * max(target_queried, 1)

    frontier: list[Node] = list(seeds or [])
    while len(frontier) < dimension:
        frontier.append(access.random_seed(r))
    frontier = frontier[:dimension]

    walk = SamplingList()
    degrees: list[int] = []
    for node in frontier:
        nbrs = access.query(node)
        if not nbrs:
            raise SamplingError(f"frontier seed {node!r} has no edges")
        walk.record(node, nbrs)
        degrees.append(len(nbrs))
    if access.num_queried >= target_queried:
        return walk

    for _ in range(cap):
        # choose the walker to move, degree-proportionally
        total = sum(degrees)
        pick = r.randrange(total)
        idx = 0
        while pick >= degrees[idx]:
            pick -= degrees[idx]
            idx += 1
        current = frontier[idx]
        nxt = r.choice(walk.neighbors[current])
        nbrs = access.query(nxt)
        if not nbrs:
            raise SamplingError(f"walker stuck: node {nxt!r} has no edges")
        walk.record(nxt, nbrs)
        frontier[idx] = nxt
        degrees[idx] = len(nbrs)
        if access.num_queried >= target_queried:
            return walk
    raise SamplingError(
        f"frontier sampling did not reach {target_queried} distinct nodes "
        f"within {cap} steps"
    )
