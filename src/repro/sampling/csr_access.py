"""CSR-backed :class:`GraphAccess`: the access model over a frozen snapshot.

The paper's evaluation protocol never lets an algorithm see the hidden
graph except through neighbor queries (Section III-A), and
:class:`~repro.sampling.access.GraphAccess` enforces that contract.
:class:`CSRGraphAccess` keeps the exact same contract — same memoized
``query`` / ``degree`` / ``random_seed`` surface, same distinct-node
accounting and budget enforcement — but serves every query from a frozen
:class:`~repro.engine.csr.CSRGraph`, and adds :meth:`batched_walks`:
multi-seed simple random walks whose *step choice* is one vectorized draw
per round while every visited node is still recorded through ``query``.

Any crawler in this package runs unchanged on a :class:`CSRGraphAccess`,
so experiments can freeze a large dataset once and fan out crawls without
re-paying dict-of-dicts traversal per walker.
"""

from __future__ import annotations

import random

import numpy as np

from repro.engine.csr import CSRGraph
from repro.engine.dispatch import ensure_csr
from repro.engine.kernels import ensure_generator, step_walkers
from repro.errors import GraphError, SamplingError
from repro.graph.multigraph import MultiGraph, Node
from repro.sampling.access import GraphAccess
from repro.sampling.walkers import SamplingList


class CSRGraphAccess(GraphAccess):
    """Drop-in :class:`GraphAccess` over a frozen CSR snapshot.

    Parameters
    ----------
    graph:
        A :class:`CSRGraph`, or a :class:`MultiGraph` which is frozen on
        construction (through the engine's snapshot cache).
    budget:
        Same distinct-node query cap as the base class.
    """

    def __init__(
        self, graph: MultiGraph | CSRGraph, budget: int | None = None
    ) -> None:
        csr = ensure_csr(graph)
        # the base class only touches the neighbor-query surface, which the
        # snapshot provides; all accounting state lives in the base class
        super().__init__(csr, budget)  # type: ignore[arg-type]
        self._csr = csr

    @property
    def csr(self) -> CSRGraph:
        """The underlying frozen snapshot."""
        return self._csr

    def random_seed(self, rng: random.Random | int | None = None) -> Node:
        """Uniform random seed node (array-backed, no node-list copy)."""
        gen = ensure_generator(rng)
        return self._csr.node_list[int(gen.integers(0, self._csr.num_nodes))]

    # ------------------------------------------------------------------
    # batched walking
    # ------------------------------------------------------------------
    def batched_walks(
        self,
        num_walks: int,
        target_queried: int,
        seeds: list[Node] | None = None,
        rng: np.random.Generator | random.Random | int | None = None,
        max_steps: int | None = None,
    ) -> list[SamplingList]:
        """Run ``num_walks`` simple random walks in lockstep until the
        combined crawl has queried ``target_queried`` distinct nodes.

        Each round records every walker's current node through
        :meth:`query` — so accounting, memoization, and the budget are
        exactly the single-walk semantics — then advances all walkers with
        one vectorized uniform-incident-edge draw.  The batch stops at the
        end of the first round that reaches the target (all walkers finish
        the round, keeping their sampling lists aligned in length).

        Returns one :class:`SamplingList` per walker, consumable by the
        re-weighted estimators individually or merged.
        """
        gen = ensure_generator(rng)
        csr = self._csr
        current = _start_positions(csr, num_walks, seeds, gen)
        cap = max_steps if max_steps is not None else 1000 * max(target_queried, 1)
        walks = [SamplingList() for _ in range(num_walks)]
        node_list = csr.node_list
        for _ in range(cap):
            for walk, i in zip(walks, current.tolist(), strict=True):
                node = node_list[i]
                walk.record(node, self.query(node))
            if self.num_queried >= target_queried:
                return walks
            current = _advance(csr, current, gen)
        raise SamplingError(
            f"batched walk did not reach {target_queried} distinct nodes "
            f"within {cap} rounds (graph too small or disconnected?)"
        )


def _start_positions(
    csr: CSRGraph,
    num_walks: int,
    seeds: list[Node] | None,
    gen: np.random.Generator,
) -> np.ndarray:
    """Validate a walker batch and resolve its starting node indices."""
    if num_walks < 1:
        raise SamplingError("need at least one walker")
    if seeds is None:
        return gen.integers(0, csr.num_nodes, size=num_walks)
    if len(seeds) != num_walks:
        raise SamplingError(f"got {len(seeds)} seeds for {num_walks} walkers")
    try:
        return np.asarray([csr.index[s] for s in seeds], dtype=np.int64)
    except KeyError as exc:
        raise SamplingError(f"seed node {exc.args[0]!r} does not exist") from exc


def _advance(
    csr: CSRGraph, current: np.ndarray, gen: np.random.Generator
) -> np.ndarray:
    """One vectorized walker step with the sampling-layer error type."""
    try:
        return step_walkers(csr, current, gen)
    except GraphError as exc:
        raise SamplingError(str(exc)) from None


#: Ceiling on the walker x node visited-matrix the vectorized accounting
#: allocates (bool, one byte per cell).  Above it — huge snapshots crossed
#: with many walkers — the per-walker-set path keeps memory linear in the
#: number of *visited* nodes instead.
_SEEN_MATRIX_BYTES = 256 * 1024 * 1024


def independent_batched_walks(
    graph: MultiGraph | CSRGraph,
    num_walks: int,
    target_queried: int,
    seeds: list[Node] | None = None,
    rng: np.random.Generator | random.Random | int | None = None,
    max_steps: int | None = None,
) -> list[SamplingList]:
    """Run ``num_walks`` *independent* walks from one frozen snapshot.

    Unlike :meth:`CSRGraphAccess.batched_walks` — whose walkers share one
    query account and stop on a combined budget — each walker here keeps
    its own distinct-node count and stops when *it* has queried
    ``target_queried`` distinct nodes, exactly the per-run semantics of
    :func:`repro.sampling.walkers.random_walk`.  The whole round is array
    work: one vectorized uniform-incident-edge draw advances every
    still-active walker, and the per-round record/query accounting — the
    measured reason batched walks used to lose to sequential Python at
    small sizes — is a boolean visited-matrix update instead of a scalar
    loop.  The :class:`SamplingList` per walker (visit sequence plus
    first-visit-ordered neighbor lists) is reconstructed once at the end,
    identical to what per-visit ``record``/``query`` calls would have
    built.

    Returns one :class:`SamplingList` per walker, each with exactly
    ``target_queried`` distinct queried nodes (graph permitting).
    """
    csr = ensure_csr(graph)
    gen = ensure_generator(rng)
    current = _start_positions(csr, num_walks, seeds, gen)
    cap = max_steps if max_steps is not None else 1000 * max(target_queried, 1)
    n = csr.num_nodes
    if num_walks * n > _SEEN_MATRIX_BYTES:
        return _independent_walks_sets(
            csr, num_walks, target_queried, current, gen, cap
        )
    seen = np.zeros((num_walks, n), dtype=bool)
    counts = np.zeros(num_walks, dtype=np.int64)
    active = np.arange(num_walks, dtype=np.int64)
    visits_walker: list[np.ndarray] = []
    visits_node: list[np.ndarray] = []
    for _ in range(cap):
        visits_walker.append(active)
        visits_node.append(current)
        fresh = ~seen[active, current]
        seen[active, current] = True
        counts[active] += fresh
        keep = counts[active] < target_queried
        if not keep.any():
            return _collect_walks(csr, num_walks, visits_walker, visits_node)
        active = active[keep]
        current = _advance(csr, current[keep], gen)
    raise SamplingError(
        f"independent batched walks did not reach {target_queried} distinct "
        f"nodes within {cap} rounds (graph too small or disconnected?)"
    )


def _collect_walks(
    csr: CSRGraph,
    num_walks: int,
    visits_walker: list[np.ndarray],
    visits_node: list[np.ndarray],
) -> list[SamplingList]:
    """Rebuild per-walker sampling lists from the round-major visit log.

    A stable sort by walker id turns the round-major log into per-walker
    visit sequences (within a walker, stable keeps round order), and
    ``np.unique``'s first-occurrence indices recover the order in which a
    per-visit ``record`` would have inserted the neighbor lists.
    """
    all_walker = np.concatenate(visits_walker)
    all_node = np.concatenate(visits_node)
    order = np.argsort(all_walker, kind="stable")
    per_walker = np.bincount(all_walker, minlength=num_walks)
    splits = np.cumsum(per_walker)[:-1]
    node_list = csr.node_list
    implicit = isinstance(node_list, range)
    walks = []
    for seq in np.split(all_node[order], splits):
        positions = seq.tolist()
        nodes = positions if implicit else [node_list[i] for i in positions]
        uniq, first = np.unique(seq, return_index=True)
        neighbors: dict[Node, list[Node]] = {}
        for i in uniq[np.argsort(first, kind="stable")].tolist():
            neighbors[node_list[i]] = csr.incident_edge_endpoints(node_list[i])
        walks.append(SamplingList(nodes=nodes, neighbors=neighbors))
    return walks


def _independent_walks_sets(
    csr: CSRGraph,
    num_walks: int,
    target_queried: int,
    current: np.ndarray,
    gen: np.random.Generator,
    cap: int,
) -> list[SamplingList]:
    """Set-based fallback for walker x node products beyond the matrix cap.

    Same draw sequence, stop timing, and outputs as the vectorized path;
    only the distinct-visit bookkeeping differs (one Python set per
    walker, memory linear in nodes actually visited).
    """
    seen: list[set[int]] = [set() for _ in range(num_walks)]
    active = list(range(num_walks))
    visits_walker: list[np.ndarray] = []
    visits_node: list[np.ndarray] = []
    for _ in range(cap):
        visits_walker.append(np.asarray(active, dtype=np.int64))
        visits_node.append(current)
        still = []
        for slot, w in enumerate(active):
            seen[w].add(int(current[slot]))
            if len(seen[w]) < target_queried:
                still.append(slot)
        if not still:
            return _collect_walks(csr, num_walks, visits_walker, visits_node)
        active = [active[slot] for slot in still]
        current = _advance(csr, current[still], gen)
    raise SamplingError(
        f"independent batched walks did not reach {target_queried} distinct "
        f"nodes within {cap} rounds (graph too small or disconnected?)"
    )
