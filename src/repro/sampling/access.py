"""The paper's access model as an enforced interface.

Section III-A assumes: (i) querying node ``v`` returns its incident edge
set ``N(v)``; (ii) complete or random access to the graph is not feasible;
(iii) the graph is static.  :class:`GraphAccess` wraps a hidden
:class:`MultiGraph` and exposes *only* neighbor queries plus a seed-node
draw, counting distinct queried nodes so that experiments can stop a crawl
at "x% of nodes queried" without peeking at the full graph through any other
code path.

All crawlers in this package take a ``GraphAccess``; passing a raw graph is
a type error by design.  Tests assert that crawlers never exceed their query
budgets and never touch non-queried adjacency.
"""

from __future__ import annotations

import random

from repro.errors import BudgetExhaustedError, SamplingError
from repro.graph.multigraph import MultiGraph, Node
from repro.utils.rng import ensure_rng


class GraphAccess:
    """Neighbor-query facade over a hidden graph, with query accounting.

    Parameters
    ----------
    graph:
        The hidden graph.  Held privately; callers interact only through
        :meth:`query`, :meth:`degree`, and :meth:`random_seed`.
    budget:
        Optional hard cap on the number of *distinct* queried nodes.  A
        crawler that exceeds it gets a :class:`SamplingError`, which is how
        experiments enforce the "x% queried" stopping rule defensively.
    """

    def __init__(self, graph: MultiGraph, budget: int | None = None) -> None:
        if graph.num_nodes == 0:
            raise SamplingError("cannot sample from an empty graph")
        self._graph = graph
        self._budget = budget
        self._queried: dict[Node, list[Node]] = {}

    # ------------------------------------------------------------------
    # the three permitted operations
    # ------------------------------------------------------------------
    def query(self, node: Node) -> list[Node]:
        """Return the endpoints of ``N(node)``, one entry per incident edge.

        Repeat queries of the same node are free (the result is memoized),
        matching real crawler implementations that cache responses.
        """
        if node in self._queried:
            return self._queried[node]
        if self._budget is not None and len(self._queried) >= self._budget:
            raise BudgetExhaustedError(
                f"query budget of {self._budget} distinct nodes exhausted"
            )
        if not self._graph.has_node(node):
            raise SamplingError(f"queried node {node!r} does not exist")
        nbrs = self._graph.incident_edge_endpoints(node)
        self._queried[node] = nbrs
        return nbrs

    def degree(self, node: Node) -> int:
        """Degree of a node; only valid after the node has been queried.

        The re-weighted estimators need ``d(x_i)`` for sampled nodes, all of
        which were queried during the walk; demanding a prior query keeps
        the access model honest.
        """
        if node not in self._queried:
            raise SamplingError(
                f"degree of {node!r} requested before the node was queried"
            )
        return len(self._queried[node])

    def random_seed(self, rng: random.Random | int | None = None) -> Node:
        """Uniform random seed node.

        The paper's experimental design selects seeds uniformly at random
        from the node set; this is the one place the wrapper touches global
        information, mirroring that experimental convention (a practical
        crawler would instead be handed a seed account).
        """
        r = ensure_rng(rng)
        nodes = list(self._graph.nodes())
        return r.choice(nodes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def fault_policy(self):
        """The injected :class:`~repro.sampling.faults.FaultPolicy`, if any.

        ``None`` on the ideal access.  Crawlers read this to decide
        whether to run strictly (ideal: shortfalls raise) or leniently
        (a non-null policy: skip faulted nodes, re-seed dead crawls,
        keep partial results on budget exhaustion).
        """
        return None

    @property
    def queried_nodes(self) -> set[Node]:
        """Set of distinct nodes queried so far."""
        return set(self._queried)

    @property
    def num_queried(self) -> int:
        """Number of distinct nodes queried so far."""
        return len(self._queried)

    @property
    def budget(self) -> int | None:
        """The distinct-node query budget (None = unlimited)."""
        return self._budget

    def remaining(self) -> int | None:
        """Queries remaining under the budget (None = unlimited)."""
        if self._budget is None:
            return None
        return self._budget - len(self._queried)

    def budget_exhausted(self) -> bool:
        """True when no further *new* nodes may be queried."""
        return self._budget is not None and len(self._queried) >= self._budget

    def fraction_queried(self) -> float:
        """Fraction of the hidden graph's nodes queried so far."""
        return len(self._queried) / self._graph.num_nodes

    @property
    def hidden_graph_num_nodes(self) -> int:
        """Number of nodes of the hidden graph.

        Exposed for experiment bookkeeping (computing "x% of nodes"), not
        for use by crawlers.
        """
        return self._graph.num_nodes
