"""Induced-subgraph construction (Section III-D).

Given the adjacency lists of the queried nodes, the sampled subgraph is
``G' = (V', E')`` where ``E' = union of N(i) over queried i`` and
``V' = V'_qry  ∪  V'_vis`` (queried nodes plus nodes visible as their
neighbors).  The key structural fact, Lemma 1, falls out of the
construction and is exposed as :meth:`SampledSubgraph.is_degree_exact`:

* a queried node's subgraph degree equals its true degree, while
* a visible node's subgraph degree is a lower bound on its true degree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SamplingError
from repro.graph.multigraph import MultiGraph, Node
from repro.sampling.crawlers import CrawlResult
from repro.sampling.walkers import SamplingList


@dataclass
class SampledSubgraph:
    """The subgraph ``G'`` plus the queried/visible partition of its nodes."""

    graph: MultiGraph
    queried: set[Node] = field(default_factory=set)
    visible: set[Node] = field(default_factory=set)

    @property
    def num_nodes(self) -> int:
        """``|V'|``."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """``|E'|``."""
        return self.graph.num_edges

    def is_degree_exact(self, node: Node) -> bool:
        """True when the node's subgraph degree equals its degree in ``G``
        (Lemma 1: exactly the queried nodes)."""
        return node in self.queried

    def edge_set(self) -> set[tuple[Node, Node]]:
        """Canonicalized (min, max) set of the subgraph's edges.

        The rewiring phase uses this to exclude subgraph edges from the
        candidate pool; the original graphs are simple so a plain set
        suffices.
        """
        return {(u, v) if u <= v else (v, u) for u, v in self.graph.edges()}


def build_subgraph(sample: SamplingList | CrawlResult) -> SampledSubgraph:
    """Construct ``G'`` from a walk's sampling list or a crawl result.

    Each edge of ``E'`` appears once even when both endpoints were queried
    (the union is a set of edges).  Works for any crawler since only the
    queried-adjacency mapping is consumed.
    """
    neighbors = sample.neighbors
    if not neighbors:
        raise SamplingError("cannot build a subgraph from an empty sample")
    queried = set(neighbors)
    g = MultiGraph()
    edge_seen: set[tuple[Node, Node]] = set()
    for u in neighbors:
        g.add_node(u)
    visible: set[Node] = set()
    for u, nbrs in neighbors.items():
        for v in nbrs:
            if v not in queried:
                visible.add(v)
            key = (u, v) if _node_key(u) <= _node_key(v) else (v, u)
            if key not in edge_seen:
                edge_seen.add(key)
                g.add_edge(*key)
    return SampledSubgraph(graph=g, queried=queried, visible=visible)


def _node_key(node: Node):
    """Stable ordering key for canonical edge direction.

    Node ids are ints throughout the library; ``repr`` fallback keeps the
    function total for exotic id types used in tests.
    """
    return (0, node) if isinstance(node, int) else (1, repr(node))
