"""Crawling-based sampling under the paper's restricted access model.

Every crawler consumes a :class:`GraphAccess` wrapper (neighbor queries
only, with query accounting) and produces either a :class:`SamplingList`
(random walks — ordered, with repeats, as required by the re-weighted
estimators) or a plain set of queried nodes (BFS-family crawlers, which feed
subgraph sampling only).
"""

from repro.sampling.access import GraphAccess
from repro.sampling.csr_access import CSRGraphAccess
from repro.sampling.faults import (
    FaultPolicy,
    FaultyAccess,
    FaultyCSRGraphAccess,
    make_faulty_access,
    policy_from_knobs,
    spawn_fault_seed,
)
from repro.sampling.walkers import (
    SamplingList,
    random_walk,
    non_backtracking_random_walk,
    metropolis_hastings_random_walk,
)
from repro.sampling.crawlers import (
    CrawlResult,
    bfs_crawl,
    snowball_crawl,
    forest_fire_crawl,
    random_walk_crawl,
)
from repro.sampling.frontier import frontier_sampling
from repro.sampling.subgraph import SampledSubgraph, build_subgraph

__all__ = [
    "frontier_sampling",
    "GraphAccess",
    "CSRGraphAccess",
    "FaultPolicy",
    "FaultyAccess",
    "FaultyCSRGraphAccess",
    "make_faulty_access",
    "policy_from_knobs",
    "spawn_fault_seed",
    "SamplingList",
    "random_walk",
    "non_backtracking_random_walk",
    "metropolis_hastings_random_walk",
    "CrawlResult",
    "bfs_crawl",
    "snowball_crawl",
    "forest_fire_crawl",
    "random_walk_crawl",
    "SampledSubgraph",
    "build_subgraph",
]
