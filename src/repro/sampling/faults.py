"""Deterministic fault injection for crawls: the imperfect-crawler regime.

The paper's access model (Section III-A) assumes an ideal crawler: every
neighbor query succeeds, returns the complete incident edge list, and
costs exactly one API call.  Real crawls of social-network APIs see none
of that — requests fail transiently and are retried, rate limits make
call cost vary, neighbor responses are truncated at a page size, and
accounts churn away mid-crawl.  This module makes that regime a
first-class, *deterministic* sweep axis:

* :class:`FaultPolicy` — a frozen description of the regime (transient
  failure rate with bounded retry/backoff, rate-limit window, neighbor
  truncation cap, node-churn probability),
* :class:`FaultyAccess` — a :class:`~repro.sampling.access.GraphAccess`
  that injects the policy's faults into every query while keeping the
  full access-model surface, and
* :class:`FaultyCSRGraphAccess` — the same wrapper over
  :class:`~repro.sampling.csr_access.CSRGraphAccess`, so ``backend="csr"``
  crawls and shared-memory snapshots run under faults unchanged.

Determinism contract
--------------------
Every fault decision is drawn from a dedicated :class:`random.Random`
seeded by ``fault_seed`` — a :class:`numpy.random.SeedSequence` child of
the pre-spawned run seed under a fixed namespace
(:func:`spawn_fault_seed`), never from the crawler's own generator.  Two
consequences the tests pin down:

* a **null policy is a bit-identical passthrough**: no fault randomness
  is ever drawn, so crawls over a zero-fault :class:`FaultyAccess` equal
  crawls over a plain :class:`GraphAccess` trace for trace, and
* a crawl is a **pure function of** ``(seed, policy)``: the fault stream
  rides the same pre-spawned seed tree as everything else, so ``jobs=N``
  sweeps stay byte-identical to serial and results reproduce across
  processes and platforms.

Budget semantics under faults
-----------------------------
An ideal access charges the budget one unit per *distinct queried node*.
A faulty access charges per **API call**: failed attempts, the wasted
call a rate-limit window eats, and churn discoveries all consume budget
without yielding a node.  With a null policy the two accountings
coincide (one successful call per distinct node), preserving the
passthrough guarantee.  Exhaustion raises
:class:`~repro.errors.BudgetExhaustedError` — possibly mid-retry — which
fault-tolerant crawlers treat as "stop and keep what you have".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    BudgetExhaustedError,
    NodeChurnedError,
    QueryFailedError,
    SamplingError,
)
from repro.graph.multigraph import MultiGraph, Node
from repro.sampling.access import GraphAccess
from repro.sampling.csr_access import CSRGraphAccess

_U64 = 0xFFFFFFFFFFFFFFFF

#: Fixed namespace separating fault entropy from the run/cell seed tree:
#: ``spawn_fault_seed(s)`` can never collide with ``spawn_seeds(s, n)``
#: children because no other spawn path uses this tag.
_FAULT_NAMESPACE = 0xFA017


def spawn_fault_seed(base: int, *path: int) -> int:
    """A dedicated fault-stream child seed of ``base`` at ``path``.

    Uses :class:`numpy.random.SeedSequence` under the module's fixed
    namespace, so the fault stream is (a) independent of the crawler's
    own generator and of every other seed spawned from ``base``, and
    (b) stable across platforms and processes — the property the
    ``jobs=N`` byte-identity contract extends to fault sweeps.
    """
    # path arity is part of the entropy: SeedSequence zero-pads, so a
    # trailing 0 coordinate would otherwise alias the parent stream
    entropy = [base & _U64, _FAULT_NAMESPACE, len(path), *(p & _U64 for p in path)]
    ss = np.random.SeedSequence(entropy)
    return int(ss.generate_state(1, np.uint64)[0])


@dataclass(frozen=True)
class FaultPolicy:
    """Frozen description of one imperfect-crawler regime.

    Parameters
    ----------
    failure_rate:
        Probability in ``[0, 1)`` that one query *attempt* fails
        transiently.  Each failed attempt is charged one API call and
        retried up to ``max_retries`` times; when all attempts fail the
        query raises :class:`~repro.errors.QueryFailedError`.
    max_retries:
        Bounded retry count per query (0 = fail on first transient).
    backoff_base:
        Simulated seconds waited before retry ``k`` (``backoff_base *
        2**k``).  Accounting only — nothing sleeps — surfaced through
        :attr:`FaultyAccess.fault_stats` so experiments can report
        simulated wall-clock cost; it never affects the crawl itself.
    rate_limit:
        Window size of the simulated rate limiter: every
        ``rate_limit``-th charged call hits the limit and one extra
        (wasted) call is charged for the re-issue after the window
        resets, so query cost varies between 1 and 2 calls.  0 disables.
    truncate_at:
        Neighbor-list page cap: queries return only the first
        ``truncate_at`` incident-edge endpoints (and ``degree`` reports
        the truncated length — the crawler can't see past the page).
        0 disables.
    churn:
        Probability in ``[0, 1]`` that a node has churned away by the
        time it is first queried; a churned node raises
        :class:`~repro.errors.NodeChurnedError` on that query (one call
        charged for the discovery) and on every repeat query (free).
    """

    failure_rate: float = 0.0
    max_retries: int = 2
    backoff_base: float = 0.0
    rate_limit: int = 0
    truncate_at: int = 0
    churn: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise SamplingError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        if self.max_retries < 0:
            raise SamplingError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0.0:
            raise SamplingError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.rate_limit < 0:
            raise SamplingError(f"rate_limit must be >= 0, got {self.rate_limit}")
        if self.truncate_at < 0:
            raise SamplingError(f"truncate_at must be >= 0, got {self.truncate_at}")
        if not 0.0 <= self.churn <= 1.0:
            raise SamplingError(f"churn must be in [0, 1], got {self.churn}")

    @property
    def is_null(self) -> bool:
        """True when the policy injects nothing (ideal crawling).

        A null policy is the documented bit-identical passthrough: the
        wrapper draws no fault randomness and delegates straight to the
        ideal query path.
        """
        return (
            self.failure_rate == 0.0
            and self.rate_limit == 0
            and self.truncate_at == 0
            and self.churn == 0.0
        )

    def label(self) -> str:
        """Compact stable label for CSV keys and report rows.

        Only the active knobs appear, so ``FaultPolicy()`` is ``"ideal"``
        and e.g. ``FaultPolicy(failure_rate=0.1, rate_limit=50)`` is
        ``"f0.1+rl50"``.
        """
        parts: list[str] = []
        if self.failure_rate:
            parts.append(f"f{self.failure_rate:g}")
        if self.rate_limit:
            parts.append(f"rl{self.rate_limit:d}")
        if self.truncate_at:
            parts.append(f"t{self.truncate_at:d}")
        if self.churn:
            parts.append(f"c{self.churn:g}")
        return "+".join(parts) if parts else "ideal"


def policy_from_knobs(
    fault_rate: float = 0.0,
    rate_limit: int = 0,
    truncate_at: int = 0,
    churn: float = 0.0,
) -> FaultPolicy | None:
    """The policy the four user-facing knobs describe, or ``None``.

    This is the single translation point for the CLI flags
    (``--fault-rate/--rate-limit/--truncate-at/--churn``) and the service
    parameters of the same names: all-zero means ideal crawling and maps
    to ``None`` (not a null policy object), so untouched invocations
    carry no fault plumbing at all.
    """
    if not (fault_rate or rate_limit or truncate_at or churn):
        return None
    return FaultPolicy(
        failure_rate=fault_rate,
        rate_limit=rate_limit,
        truncate_at=truncate_at,
        churn=churn,
    )


class FaultyAccess(GraphAccess):
    """A :class:`GraphAccess` that injects a :class:`FaultPolicy`.

    Implements the full access-model surface — memoized ``query`` /
    ``degree`` / ``random_seed`` plus all accounting properties — over
    the same hidden graph types the base class accepts (a
    :class:`~repro.graph.multigraph.MultiGraph` or any object with its
    neighbor-query surface, e.g. a frozen
    :class:`~repro.engine.csr.CSRGraph` snapshot).

    Parameters
    ----------
    graph:
        The hidden graph.
    policy:
        The fault regime to inject.
    fault_seed:
        Seed of the dedicated fault stream (see module docstring); use
        :func:`spawn_fault_seed` to derive it from a run seed.
    budget:
        API-*call* budget (see module docstring).  ``None`` = unlimited.
    """

    def __init__(
        self,
        graph: MultiGraph,
        policy: FaultPolicy,
        fault_seed: int = 0,
        budget: int | None = None,
    ) -> None:
        super().__init__(graph, budget)
        self._policy = policy
        self._fault_rng = random.Random(fault_seed)
        self._calls = 0
        self._dead: set[Node] = set()
        self._stats = {
            "calls": 0,
            "retries": 0,
            "rate_limit_hits": 0,
            "churned": 0,
            "truncated": 0,
            "simulated_wait_seconds": 0.0,
        }

    # ------------------------------------------------------------------
    # fault surface
    # ------------------------------------------------------------------
    @property
    def fault_policy(self) -> FaultPolicy:
        """The injected policy (crawlers read this to pick lenient mode)."""
        return self._policy

    @property
    def calls(self) -> int:
        """Charged API calls so far (equals ``num_queried`` when null)."""
        return self._calls

    @property
    def fault_stats(self) -> dict:
        """Counters of injected fault activity (copy; safe to mutate)."""
        return dict(self._stats, calls=self._calls)

    # ------------------------------------------------------------------
    # the fault-injected query path
    # ------------------------------------------------------------------
    def query(self, node: Node) -> list[Node]:
        """Query ``node`` under the fault regime.

        Memoized repeats stay free (both successful responses and churn
        discoveries).  A null policy takes the ideal path untouched —
        same branches, same results, zero fault draws.
        """
        policy = self._policy
        if policy.is_null:
            nbrs = super().query(node)
            self._calls = len(self._queried)
            return nbrs
        if node in self._queried:
            return self._queried[node]
        if node in self._dead:
            raise NodeChurnedError(f"node {node!r} has churned away")
        if not self._graph.has_node(node):
            raise SamplingError(f"queried node {node!r} does not exist")
        # churn is decided once, on the first real query of the node; the
        # discovery costs one charged call like any other API response
        if policy.churn and self._fault_rng.random() < policy.churn:
            self._charge()
            self._dead.add(node)
            self._stats["churned"] += 1
            raise NodeChurnedError(f"node {node!r} has churned away")
        for attempt in range(policy.max_retries + 1):
            self._charge()
            if policy.failure_rate and self._fault_rng.random() < policy.failure_rate:
                self._stats["retries"] += 1
                self._stats["simulated_wait_seconds"] += (
                    policy.backoff_base * 2**attempt
                )
                continue
            nbrs = self._graph.incident_edge_endpoints(node)
            if policy.truncate_at and len(nbrs) > policy.truncate_at:
                nbrs = nbrs[: policy.truncate_at]
                self._stats["truncated"] += 1
            self._queried[node] = nbrs
            return nbrs
        raise QueryFailedError(
            f"query of {node!r} failed {policy.max_retries + 1} times "
            f"(transient failure rate {policy.failure_rate:g})"
        )

    def _charge(self) -> None:
        """Charge one API call (plus the rate-limit surcharge when the
        call lands on the window boundary); raise when the budget is
        spent *before* issuing, so exhaustion can fire mid-retry."""
        if self._budget is not None and self._calls >= self._budget:
            raise BudgetExhaustedError(
                f"API-call budget of {self._budget} exhausted "
                f"({self.num_queried} nodes crawled)"
            )
        self._calls += 1
        limit = self._policy.rate_limit
        if limit and self._calls % limit == 0:
            self._stats["rate_limit_hits"] += 1
            if self._budget is not None and self._calls >= self._budget:
                raise BudgetExhaustedError(
                    f"API-call budget of {self._budget} exhausted at a "
                    f"rate-limit window ({self.num_queried} nodes crawled)"
                )
            self._calls += 1

    # ------------------------------------------------------------------
    # accounting under the call-based budget
    # ------------------------------------------------------------------
    def remaining(self) -> int | None:
        """Charged calls remaining under the budget (None = unlimited)."""
        if self._budget is None:
            return None
        return self._budget - self._calls

    def budget_exhausted(self) -> bool:
        """True when no further calls may be charged."""
        return self._budget is not None and self._calls >= self._budget


class FaultyCSRGraphAccess(FaultyAccess, CSRGraphAccess):
    """:class:`FaultyAccess` over a frozen CSR snapshot.

    Keeps :class:`CSRGraphAccess`'s array-backed ``random_seed`` and its
    ``batched_walks`` (whose per-round ``query`` calls go through the
    fault-injected path — a fault inside a batch propagates to the
    caller, since lockstep walkers share one query account).  Accepts a
    :class:`~repro.graph.multigraph.MultiGraph` (frozen on construction)
    or an existing :class:`~repro.engine.csr.CSRGraph` / shared-memory
    snapshot, exactly like the ideal CSR access.
    """

    def __init__(
        self,
        graph,
        policy: FaultPolicy,
        fault_seed: int = 0,
        budget: int | None = None,
    ) -> None:
        CSRGraphAccess.__init__(self, graph, budget)
        # layer the fault state on top of the initialized CSR access;
        # FaultyAccess.__init__ would re-run GraphAccess.__init__, so the
        # fault fields are set directly instead
        self._policy = policy
        self._fault_rng = random.Random(fault_seed)
        self._calls = 0
        self._dead = set()
        self._stats = {
            "calls": 0,
            "retries": 0,
            "rate_limit_hits": 0,
            "churned": 0,
            "truncated": 0,
            "simulated_wait_seconds": 0.0,
        }


def make_faulty_access(
    graph,
    policy: FaultPolicy,
    fault_seed: int = 0,
    budget: int | None = None,
) -> FaultyAccess:
    """The faulty access the experiment harness crawls through.

    Always the plain :class:`FaultyAccess`, whatever ``graph`` is — a
    :class:`~repro.graph.multigraph.MultiGraph` or a frozen
    :class:`~repro.engine.csr.CSRGraph` snapshot (including a
    shared-memory attach), both of which serve the neighbor-query
    surface identically.  This deliberately mirrors the ideal harness,
    which wraps whichever graph object it holds in a plain
    :class:`~repro.sampling.access.GraphAccess`: a serial cell (crawling
    the MultiGraph) and a pooled worker (crawling the shared CSR
    snapshot) must draw identical ``random_seed`` re-seeds, which the
    class — not just the data — determines.  Callers who explicitly
    want the CSR access surface (``batched_walks``, the array-backed
    seed draw) construct :class:`FaultyCSRGraphAccess` directly.
    """
    return FaultyAccess(graph, policy, fault_seed=fault_seed, budget=budget)
