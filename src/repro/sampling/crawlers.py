"""Crawling methods used by the subgraph-sampling baselines.

The paper compares against subgraph sampling driven by four crawlers
(Section V-D): breadth-first search, snowball sampling (at most ``k``
random neighbors explored per node, ``k = 50``), forest fire sampling
(geometric burst of neighbors, ``p_f = 0.7``, with uniform-restart revival
when the fire dies), and the random walk itself.

Each crawler stops once ``target_queried`` distinct nodes have been queried
and returns a :class:`CrawlResult` from which the induced subgraph is built.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SamplingError
from repro.graph.multigraph import Node
from repro.sampling.access import GraphAccess
from repro.sampling.walkers import SamplingList, random_walk
from repro.utils.rng import ensure_rng

DEFAULT_SNOWBALL_K = 50  # Ref. [28] via the paper's Section V-E
DEFAULT_FOREST_FIRE_P = 0.7  # Ref. [24] via the paper's Section V-E


@dataclass
class CrawlResult:
    """Outcome of a crawl: queried nodes in query order plus their adjacency."""

    queried: list[Node] = field(default_factory=list)
    neighbors: dict[Node, list[Node]] = field(default_factory=dict)

    @property
    def num_queried(self) -> int:
        """Number of distinct queried nodes."""
        return len(self.queried)

    def record(self, node: Node, nbrs: list[Node]) -> None:
        """Record that ``node`` was queried with adjacency ``nbrs``."""
        if node not in self.neighbors:
            self.queried.append(node)
            self.neighbors[node] = nbrs


def bfs_crawl(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    rng: random.Random | int | None = None,
) -> CrawlResult:
    """Breadth-first search crawl: explore all neighbors of the earliest
    explored node, repeatedly, until the query budget is met."""
    r = ensure_rng(rng)
    start = seed if seed is not None else access.random_seed(r)
    result = CrawlResult()
    queue: deque[Node] = deque([start])
    enqueued: set[Node] = {start}
    while queue and result.num_queried < target_queried:
        u = queue.popleft()
        nbrs = access.query(u)
        result.record(u, nbrs)
        for v in nbrs:
            if v not in enqueued:
                enqueued.add(v)
                queue.append(v)
    _check_reached(result, target_queried, "BFS")
    return result


def snowball_crawl(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    k: int = DEFAULT_SNOWBALL_K,
    rng: random.Random | int | None = None,
) -> CrawlResult:
    """Snowball sampling: BFS that expands at most ``k`` randomly chosen
    distinct neighbors from each queried node."""
    if k < 1:
        raise SamplingError(f"snowball k must be >= 1, got {k}")
    r = ensure_rng(rng)
    start = seed if seed is not None else access.random_seed(r)
    result = CrawlResult()
    queue: deque[Node] = deque([start])
    enqueued: set[Node] = {start}
    while queue and result.num_queried < target_queried:
        u = queue.popleft()
        nbrs = access.query(u)
        result.record(u, nbrs)
        fresh = _distinct_unvisited(nbrs, enqueued)
        picked = fresh if len(fresh) <= k else r.sample(fresh, k)
        for v in picked:
            enqueued.add(v)
            queue.append(v)
        if not queue and result.num_queried < target_queried:
            _revive(queue, enqueued, result, r)
    _check_reached(result, target_queried, "snowball")
    return result


def forest_fire_crawl(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    p_forward: float = DEFAULT_FOREST_FIRE_P,
    rng: random.Random | int | None = None,
) -> CrawlResult:
    """Forest fire sampling: from each burning node, burn a geometric number
    of unvisited neighbors (mean ``p_f / (1 - p_f)``).

    When the fire dies before the budget is met, it is revived from a node
    chosen uniformly at random among the already sampled nodes, as in
    Kurant et al. (the paper's stated convention).
    """
    if not 0.0 < p_forward < 1.0:
        raise SamplingError(f"forest fire p_forward must be in (0, 1), got {p_forward}")
    r = ensure_rng(rng)
    start = seed if seed is not None else access.random_seed(r)
    result = CrawlResult()
    queue: deque[Node] = deque([start])
    enqueued: set[Node] = {start}
    while result.num_queried < target_queried:
        if not queue:
            _revive(queue, enqueued, result, r)
            if not queue:
                break
        u = queue.popleft()
        nbrs = access.query(u)
        result.record(u, nbrs)
        fresh = _distinct_unvisited(nbrs, enqueued)
        n_burn = min(_geometric(p_forward, r), len(fresh))
        for v in r.sample(fresh, n_burn):
            enqueued.add(v)
            queue.append(v)
    _check_reached(result, target_queried, "forest fire")
    return result


def random_walk_crawl(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    rng: random.Random | int | None = None,
) -> CrawlResult:
    """Random-walk crawl: the simple walk viewed as a crawler (ordered
    repeats dropped, only distinct queried nodes kept)."""
    walk = random_walk(access, target_queried, seed=seed, rng=rng)
    return crawl_result_from_walk(walk)


def crawl_result_from_walk(walk: SamplingList) -> CrawlResult:
    """Project a walk's :class:`SamplingList` onto a :class:`CrawlResult`."""
    result = CrawlResult()
    for node in walk.nodes:
        result.record(node, walk.neighbors[node])
    return result


def _distinct_unvisited(nbrs: list[Node], enqueued: set[Node]) -> list[Node]:
    """Distinct neighbors not yet enqueued, preserving first-seen order."""
    seen: set[Node] = set()
    out: list[Node] = []
    for v in nbrs:
        if v not in enqueued and v not in seen:
            seen.add(v)
            out.append(v)
    return out


def _revive(
    queue: deque, enqueued: set[Node], result: CrawlResult, rng: random.Random
) -> None:
    """Restart a dead crawl from a random already-sampled node's neighbor.

    Any unvisited neighbor of any sampled node re-seeds the frontier; if no
    such neighbor exists the sampled component is exhausted and the queue is
    left empty for the caller to detect.
    """
    candidates: list[Node] = []
    for u in result.queried:
        candidates.extend(
            v for v in result.neighbors[u] if v not in enqueued
        )
    if candidates:
        fresh = rng.choice(candidates)
        enqueued.add(fresh)
        queue.append(fresh)


def _geometric(p: float, rng: random.Random) -> int:
    """Geometric draw on {0, 1, 2, ...} with success prob ``1 - p``.

    ``P(X = x) = (1 - p) p^x`` so the mean is ``p / (1 - p)``, matching the
    paper's forest-fire parameterization.
    """
    x = 0
    while rng.random() < p:
        x += 1
    return x


def _check_reached(result: CrawlResult, target: int, label: str) -> None:
    if result.num_queried < target:
        raise SamplingError(
            f"{label} crawl exhausted the reachable component at "
            f"{result.num_queried} < {target} queried nodes"
        )
