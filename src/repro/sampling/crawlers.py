"""Crawling methods used by the subgraph-sampling baselines.

The paper compares against subgraph sampling driven by four crawlers
(Section V-D): breadth-first search, snowball sampling (at most ``k``
random neighbors explored per node, ``k = 50``), forest fire sampling
(geometric burst of neighbors, ``p_f = 0.7``, with uniform-restart revival
when the fire dies), and the random walk itself.

Each crawler stops once ``target_queried`` distinct nodes have been queried
and returns a :class:`CrawlResult` from which the induced subgraph is built.

Fault tolerance
---------------
Every crawler degrades gracefully under an imperfect-crawler regime
(:mod:`repro.sampling.faults`): a node whose query faults
(:class:`~repro.errors.CrawlFaultError` — churned away, or transient
retries exhausted) is skipped; a crawl whose frontier dies — including a
seed node that churns on the very first query — re-seeds
deterministically (revival from sampled territory first, then a bounded
number of fresh uniform seeds drawn from the crawler's own generator);
and budget exhaustion (:class:`~repro.errors.BudgetExhaustedError`, which
under faults counts charged API calls and can fire mid-retry) ends the
crawl with the partial result instead of raising.  On an ideal access —
or a :class:`~repro.sampling.faults.FaultyAccess` with a null policy —
none of these paths execute and the strict behavior is unchanged:
shortfalls raise :class:`~repro.errors.SamplingError` and the crawl
trace is bit-identical to what this module always produced.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.errors import BudgetExhaustedError, CrawlFaultError, SamplingError
from repro.graph.multigraph import Node
from repro.sampling.access import GraphAccess
from repro.sampling.walkers import SamplingList, random_walk
from repro.utils.rng import ensure_rng

DEFAULT_SNOWBALL_K = 50  # Ref. [28] via the paper's Section V-E
DEFAULT_FOREST_FIRE_P = 0.7  # Ref. [24] via the paper's Section V-E

#: Cap on fresh uniform re-seeds a fault-tolerant crawl may draw.  Bounds
#: the crawl when churn has killed everything reachable and there is no
#: call budget to run out of; each re-seed is one deterministic draw from
#: the crawler's generator, so the cap never affects reproducibility.
MAX_RESEEDS = 100


@dataclass
class CrawlResult:
    """Outcome of a crawl: queried nodes in query order plus their adjacency."""

    queried: list[Node] = field(default_factory=list)
    neighbors: dict[Node, list[Node]] = field(default_factory=dict)

    @property
    def num_queried(self) -> int:
        """Number of distinct queried nodes."""
        return len(self.queried)

    def record(self, node: Node, nbrs: list[Node]) -> None:
        """Record that ``node`` was queried with adjacency ``nbrs``."""
        if node not in self.neighbors:
            self.queried.append(node)
            self.neighbors[node] = nbrs


def _lenient(access: GraphAccess) -> bool:
    """True when ``access`` injects a non-null fault policy — the regime
    in which crawlers skip faulted nodes and keep partial results."""
    policy = access.fault_policy
    return policy is not None and not policy.is_null


def bfs_crawl(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    rng: random.Random | int | None = None,
) -> CrawlResult:
    """Breadth-first search crawl: explore all neighbors of the earliest
    explored node, repeatedly, until the query budget is met."""
    r = ensure_rng(rng)
    start = seed if seed is not None else access.random_seed(r)
    result = CrawlResult()
    lenient = _lenient(access)
    reseeds = 0
    queue: deque[Node] = deque([start])
    enqueued: set[Node] = {start}
    while queue and result.num_queried < target_queried:
        u = queue.popleft()
        try:
            nbrs = access.query(u)
        except CrawlFaultError:
            if not queue:
                reseeds = _reseed(queue, enqueued, result, access, r, reseeds)
            continue
        except BudgetExhaustedError:
            if lenient:
                break
            raise
        result.record(u, nbrs)
        for v in nbrs:
            if v not in enqueued:
                enqueued.add(v)
                queue.append(v)
    _check_reached(result, target_queried, "BFS", lenient)
    return result


def snowball_crawl(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    k: int = DEFAULT_SNOWBALL_K,
    rng: random.Random | int | None = None,
) -> CrawlResult:
    """Snowball sampling: BFS that expands at most ``k`` randomly chosen
    distinct neighbors from each queried node."""
    if k < 1:
        raise SamplingError(f"snowball k must be >= 1, got {k}")
    r = ensure_rng(rng)
    start = seed if seed is not None else access.random_seed(r)
    result = CrawlResult()
    lenient = _lenient(access)
    reseeds = 0
    queue: deque[Node] = deque([start])
    enqueued: set[Node] = {start}
    while queue and result.num_queried < target_queried:
        u = queue.popleft()
        try:
            nbrs = access.query(u)
        except CrawlFaultError:
            if not queue:
                reseeds = _reseed(queue, enqueued, result, access, r, reseeds)
            continue
        except BudgetExhaustedError:
            if lenient:
                break
            raise
        result.record(u, nbrs)
        fresh = _distinct_unvisited(nbrs, enqueued)
        picked = fresh if len(fresh) <= k else r.sample(fresh, k)
        for v in picked:
            enqueued.add(v)
            queue.append(v)
        if not queue and result.num_queried < target_queried:
            _revive(queue, enqueued, result, r)
            if not queue and lenient:
                reseeds = _reseed(queue, enqueued, result, access, r, reseeds)
    _check_reached(result, target_queried, "snowball", lenient)
    return result


def forest_fire_crawl(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    p_forward: float = DEFAULT_FOREST_FIRE_P,
    rng: random.Random | int | None = None,
) -> CrawlResult:
    """Forest fire sampling: from each burning node, burn a geometric number
    of unvisited neighbors (mean ``p_f / (1 - p_f)``).

    When the fire dies before the budget is met, it is revived from a node
    chosen uniformly at random among the already sampled nodes, as in
    Kurant et al. (the paper's stated convention).
    """
    if not 0.0 < p_forward < 1.0:
        raise SamplingError(f"forest fire p_forward must be in (0, 1), got {p_forward}")
    r = ensure_rng(rng)
    start = seed if seed is not None else access.random_seed(r)
    result = CrawlResult()
    lenient = _lenient(access)
    reseeds = 0
    queue: deque[Node] = deque([start])
    enqueued: set[Node] = {start}
    while result.num_queried < target_queried:
        if not queue:
            _revive(queue, enqueued, result, r)
            if not queue and lenient:
                reseeds = _reseed(queue, enqueued, result, access, r, reseeds)
            if not queue:
                break
        u = queue.popleft()
        try:
            nbrs = access.query(u)
        except CrawlFaultError:
            continue
        except BudgetExhaustedError:
            if lenient:
                break
            raise
        result.record(u, nbrs)
        fresh = _distinct_unvisited(nbrs, enqueued)
        n_burn = min(_geometric(p_forward, r), len(fresh))
        for v in r.sample(fresh, n_burn):
            enqueued.add(v)
            queue.append(v)
    _check_reached(result, target_queried, "forest fire", lenient)
    return result


def random_walk_crawl(
    access: GraphAccess,
    target_queried: int,
    seed: Node | None = None,
    rng: random.Random | int | None = None,
) -> CrawlResult:
    """Random-walk crawl: the simple walk viewed as a crawler (ordered
    repeats dropped, only distinct queried nodes kept)."""
    walk = random_walk(access, target_queried, seed=seed, rng=rng)
    return crawl_result_from_walk(walk)


def crawl_result_from_walk(walk: SamplingList) -> CrawlResult:
    """Project a walk's :class:`SamplingList` onto a :class:`CrawlResult`."""
    result = CrawlResult()
    for node in walk.nodes:
        result.record(node, walk.neighbors[node])
    return result


def _distinct_unvisited(nbrs: list[Node], enqueued: set[Node]) -> list[Node]:
    """Distinct neighbors not yet enqueued, preserving first-seen order."""
    seen: set[Node] = set()
    out: list[Node] = []
    for v in nbrs:
        if v not in enqueued and v not in seen:
            seen.add(v)
            out.append(v)
    return out


def _revive(
    queue: deque, enqueued: set[Node], result: CrawlResult, rng: random.Random
) -> None:
    """Restart a dead crawl from a random already-sampled node's neighbor.

    Any unvisited neighbor of any sampled node re-seeds the frontier; if no
    such neighbor exists the sampled component is exhausted and the queue is
    left empty for the caller to detect.
    """
    candidates: list[Node] = []
    for u in result.queried:
        candidates.extend(
            v for v in result.neighbors[u] if v not in enqueued
        )
    if candidates:
        fresh = rng.choice(candidates)
        enqueued.add(fresh)
        queue.append(fresh)


def _reseed(
    queue: deque,
    enqueued: set[Node],
    result: CrawlResult,
    access: GraphAccess,
    rng: random.Random,
    reseeds: int,
) -> int:
    """Fault-regime frontier recovery; returns the updated re-seed count.

    Revival from sampled territory is tried first (same convention as the
    ideal forest fire); when nothing sampled remains reachable, a fresh
    uniform seed is drawn from the crawler's generator — the path a crawl
    whose seed node churned on its very first query takes.  Both steps
    consume only the crawler's own rng, so recovery is as deterministic
    as the crawl itself.  At most :data:`MAX_RESEEDS` fresh seeds are
    drawn; after that the queue is left empty for the caller to stop.
    """
    if result.queried:
        _revive(queue, enqueued, result, rng)
        if queue:
            return reseeds
    if reseeds >= MAX_RESEEDS:
        return reseeds
    fresh = access.random_seed(rng)
    enqueued.add(fresh)
    queue.append(fresh)
    return reseeds + 1


def _geometric(p: float, rng: random.Random) -> int:
    """Geometric draw on {0, 1, 2, ...} with success prob ``1 - p``.

    ``P(X = x) = (1 - p) p^x`` so the mean is ``p / (1 - p)``, matching the
    paper's forest-fire parameterization.  ``p = 0`` always burns nothing
    (without touching the generator); ``p = 1`` would burn forever and is
    rejected rather than looping.
    """
    if p <= 0.0:
        return 0
    if p >= 1.0:
        raise SamplingError(f"geometric burst requires p < 1, got {p}")
    x = 0
    while rng.random() < p:
        x += 1
    return x


def _check_reached(
    result: CrawlResult, target: int, label: str, lenient: bool = False
) -> None:
    if lenient:
        # under a fault regime a shortfall is the measured outcome, not an
        # error — but an empty crawl has nothing to build a subgraph from
        if result.num_queried == 0:
            raise SamplingError(
                f"{label} crawl sampled nothing under the fault regime"
            )
        return
    if result.num_queried < target:
        raise SamplingError(
            f"{label} crawl exhausted the reachable component at "
            f"{result.num_queried} < {target} queried nodes"
        )
