"""Graph visualization: force-directed layout + SVG rendering.

Replaces the paper's Gephi step for Figure 4 (original vs. generated graph
portraits).  The qualitative claims under test — subgraph sampling keeps
the dense core but loses the low-degree periphery, Gjoka et al. loses the
shape entirely, the proposed method keeps both — are visible under any
force-directed layout, so a dependency-free Fruchterman–Reingold
implementation (numpy-accelerated) plus a small SVG writer suffice.
"""

from repro.viz.layout import fruchterman_reingold_layout
from repro.viz.svg import render_svg, save_svg
from repro.viz.gallery import build_gallery, save_gallery

__all__ = [
    "fruchterman_reingold_layout",
    "render_svg",
    "save_svg",
    "build_gallery",
    "save_gallery",
]
