"""Minimal SVG writer for graph portraits (Figure 4 output format).

Black circles for nodes, translucent gray lines for edges — the paper's
rendering convention — with node radius scaled gently by degree so the
core/periphery contrast is visible at thumbnail size.
"""

from __future__ import annotations

import math
import os
from xml.sax.saxutils import escape

from repro.graph.multigraph import MultiGraph, Node

Position = tuple[float, float]


def render_svg(
    graph: MultiGraph,
    positions: dict[Node, Position],
    size: int = 800,
    title: str | None = None,
    max_edges: int | None = 20_000,
) -> str:
    """SVG document string for ``graph`` at ``positions``.

    Nodes missing from ``positions`` (e.g. dropped by layout sampling) are
    skipped along with their edges.  ``max_edges`` truncates pathological
    edge counts to keep files viewable; a comment in the SVG records any
    truncation.
    """
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{size // 2}" y="20" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14">{escape(title)}</text>'
        )

    drawn = 0
    truncated = False
    for u, v in graph.edges():
        if u == v or u not in positions or v not in positions:
            continue
        if max_edges is not None and drawn >= max_edges:
            truncated = True
            break
        x1, y1 = positions[u]
        x2, y2 = positions[v]
        parts.append(
            f'<line x1="{x1 * size:.1f}" y1="{y1 * size:.1f}" '
            f'x2="{x2 * size:.1f}" y2="{y2 * size:.1f}" '
            'stroke="#999999" stroke-width="0.4" stroke-opacity="0.35"/>'
        )
        drawn += 1
    if truncated:
        parts.append(f"<!-- edge rendering truncated at {max_edges} -->")

    for u, (x, y) in positions.items():
        if not graph.has_node(u):
            continue
        radius = 1.0 + 0.6 * math.sqrt(max(graph.degree(u), 1))
        parts.append(
            f'<circle cx="{x * size:.1f}" cy="{y * size:.1f}" '
            f'r="{min(radius, 8.0):.1f}" fill="black" fill-opacity="0.85"/>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    graph: MultiGraph,
    positions: dict[Node, Position],
    path: str | os.PathLike,
    size: int = 800,
    title: str | None = None,
) -> None:
    """Render and write an SVG portrait to ``path``."""
    document = render_svg(graph, positions, size=size, title=title)
    with open(path, "w", encoding="utf-8") as f:
        f.write(document)
