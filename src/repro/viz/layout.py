"""Fruchterman–Reingold force-directed layout, numpy-vectorized.

Full O(n^2) repulsion per iteration, which is fine at the dataset-stand-in
scale (a few thousand nodes); larger graphs should pass ``sample_nodes`` to
lay out a uniform node sample (Figure 4's judgement is about the global
shape, which survives sampling).
"""

from __future__ import annotations

import random

import numpy as np

from repro.graph.multigraph import MultiGraph, Node
from repro.utils.rng import ensure_rng


def fruchterman_reingold_layout(
    graph: MultiGraph,
    iterations: int = 60,
    rng: random.Random | int | None = None,
    sample_nodes: int | None = None,
) -> dict[Node, tuple[float, float]]:
    """2-D positions for every (laid-out) node in the unit square.

    Parameters
    ----------
    graph:
        Graph to lay out; parallels collapse to a single spring, loops are
        ignored.
    iterations:
        Annealing steps (temperature decays linearly to zero).
    rng:
        Seedable randomness for the initial placement.
    sample_nodes:
        When set and smaller than ``n``, lay out only a uniform node sample
        (with the induced edges); other nodes are absent from the result.
    """
    r = ensure_rng(rng)
    nodes = list(graph.nodes())
    if sample_nodes is not None and sample_nodes < len(nodes):
        keep = set(r.sample(nodes, sample_nodes))
        nodes = [u for u in nodes if u in keep]
    n = len(nodes)
    if n == 0:
        return {}
    if n == 1:
        return {nodes[0]: (0.5, 0.5)}

    index = {u: i for i, u in enumerate(nodes)}
    edges: set[tuple[int, int]] = set()
    for u, v in graph.edges():
        if u == v or u not in index or v not in index:
            continue
        iu, iv = index[u], index[v]
        edges.add((iu, iv) if iu < iv else (iv, iu))
    edge_arr = np.asarray(sorted(edges), dtype=np.int64).reshape(-1, 2)

    pos = np.asarray(
        [[r.random(), r.random()] for _ in range(n)], dtype=np.float64
    )
    k_opt = np.sqrt(1.0 / n)  # optimal pairwise distance in the unit square
    temperature = 0.1
    cooling = temperature / max(iterations, 1)

    for _ in range(iterations):
        delta = pos[:, None, :] - pos[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", delta, delta)
        np.fill_diagonal(dist2, 1.0)
        dist = np.sqrt(np.maximum(dist2, 1e-12))
        # repulsion ~ k^2 / d for every pair
        repulse = (k_opt * k_opt) / dist2
        disp = np.einsum("ij,ijk->ik", repulse, delta)
        # attraction ~ d^2 / k along edges
        if edge_arr.size:
            src, dst = edge_arr[:, 0], edge_arr[:, 1]
            evec = pos[src] - pos[dst]
            elen = np.sqrt(np.maximum(np.einsum("ij,ij->i", evec, evec), 1e-12))
            pull = (elen / k_opt)[:, None] * evec
            np.add.at(disp, src, -pull)
            np.add.at(disp, dst, pull)
        # bounded move by temperature
        length = np.sqrt(np.maximum(np.einsum("ij,ij->i", disp, disp), 1e-12))
        scale = np.minimum(length, temperature) / length
        pos += disp * scale[:, None]
        temperature = max(temperature - cooling, 1e-4)

    # normalize into the unit square with a small margin
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    span = np.maximum(hi - lo, 1e-9)
    pos = 0.05 + 0.9 * (pos - lo) / span
    return {u: (float(pos[i, 0]), float(pos[i, 1])) for u, i in index.items()}
