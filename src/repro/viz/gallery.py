"""HTML gallery combining the Figure 4 portraits into one page.

The paper presents Figure 4 as a 7-panel grid (original plus six methods);
this writer inlines the rendered SVGs into a single self-contained HTML
file for side-by-side inspection in any browser.
"""

from __future__ import annotations

import html
import os


def build_gallery(svg_paths: list[str], title: str = "Figure 4") -> str:
    """HTML document embedding every SVG in a responsive grid.

    Panel captions come from the file names (``fig4_<dataset>_<label>.svg``
    -> ``<label>``); missing files raise rather than producing holes.
    """
    panels: list[str] = []
    for path in svg_paths:
        with open(path, encoding="utf-8") as f:
            svg = f.read()
        label = _label_from_path(path)
        panels.append(
            '<figure class="panel">'
            f"{svg}"
            f"<figcaption>{html.escape(label)}</figcaption>"
            "</figure>"
        )
    body = "\n".join(panels)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>
  body {{ font-family: sans-serif; margin: 1rem; }}
  .grid {{ display: grid; grid-template-columns: repeat(auto-fit, minmax(320px, 1fr)); gap: 1rem; }}
  .panel {{ margin: 0; border: 1px solid #ddd; padding: 0.5rem; }}
  .panel svg {{ width: 100%; height: auto; }}
  figcaption {{ text-align: center; font-weight: bold; padding-top: 0.25rem; }}
</style>
</head>
<body>
<h1>{html.escape(title)}</h1>
<div class="grid">
{body}
</div>
</body>
</html>
"""


def save_gallery(
    svg_paths: list[str],
    path: str | os.PathLike,
    title: str = "Figure 4",
) -> None:
    """Render and write the gallery HTML to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(build_gallery(svg_paths, title=title))


def _label_from_path(path: str) -> str:
    stem = os.path.splitext(os.path.basename(path))[0]
    return stem.rsplit("_", 1)[-1] if "_" in stem else stem
